"""Phase-1 whole-program analysis: per-file summaries and the project index.

``repro.lint`` historically ran every rule over one file at a time, so a
blocking call, entropy source, or unpicklable capture hidden one helper
away was invisible.  The whole-program engine fixes that in two phases:

1. Each file is parsed once into a :class:`FileSummary` — the symbol
   table (functions, classes, imports), every call site with a
   best-effort *reference* to its callee, intrinsic effect sites, spec
   placements, and the per-file rule findings.  Summaries are plain
   data: they serialize to JSON (see :mod:`repro.lint.cache`) so a warm
   run can skip re-parsing unchanged files entirely.
2. The :class:`ProjectIndex` joins the summaries: module name → summary,
   global function table, import resolution *within the linted set* —
   the substrate :mod:`repro.lint.callgraph` and
   :mod:`repro.lint.effects` build on.

Soundness: resolution is deliberately best-effort (DESIGN.md §16).
Dynamic dispatch, ``getattr``, decorators that replace functions, and
attribute chains longer than ``self.<attr>.<method>()`` resolve to
nothing and simply produce no call edge — the whole-program rules can
miss violations behind them, but never invent one out of an unresolved
call.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from .context import ModuleUnderLint
from .findings import LintFinding

#: Bump when summary layout or extraction logic changes: stale cache
#: entries from an older analyzer must never feed the fixpoint.
ANALYSIS_VERSION = 1

#: Reference kinds a call site may carry (see :class:`Ref`).
REF_KINDS = ("name", "self", "attr", "typed")

#: spawning APIs whose callable arguments run *off* the event loop, so
#: blocking effects must not propagate through them (the executor cut)
EXECUTOR_METHODS = frozenset({"run_in_executor", "to_thread"})

#: spec/protocol-factory constructors whose arguments travel to pool
#: workers (mirrors ``rules.poolsafety.SPEC_FACTORY_NAMES``)
SPEC_FACTORY_NAMES = frozenset(
    {
        "RunSpec",
        "EnsembleSpec",
        "ExploreSpec",
        "UniformProtocol",
        "ConsensusProtocol",
        "GossipProtocol",
        "FullInformationProtocol",
        "uniform_protocol",
    }
)


@dataclass(frozen=True)
class Ref:
    """A best-effort reference to a callee, resolvable against the index.

    ``kind`` is one of :data:`REF_KINDS`:

    - ``name``: a bare name — ``helper()`` → ``parts = ("helper",)``
    - ``self``: a method on the enclosing instance — ``self.m()`` /
      ``cls.m()`` → ``parts = ("m",)``
    - ``attr``: a dotted chain rooted at a plain name —
      ``mod.Class.m()`` → ``parts = ("mod", "Class", "m")``; the root
      resolves through the import table.  ``self.<attr>.<method>()``
      is encoded as ``parts = ("self", attr, method)``.
    - ``typed``: a method on a local variable whose class is known from
      an annotation or constructor call — ``state.claim()`` with
      ``state: ServeState`` → ``parts = ("ServeState", "claim")``.
    """

    kind: str
    parts: tuple[str, ...]


@dataclass(frozen=True)
class CallSite:
    """One call expression, attributed to its lexically enclosing scope."""

    #: module-relative qualname of the enclosing function (``Class.m``,
    #: ``fn``, ``fn.<locals>.inner``); ``None`` for module-level code
    caller: str | None
    ref: Ref
    line: int
    col: int
    #: the call value is returned by the caller (unpicklable-capture
    #: effects propagate only along these edges)
    in_return: bool = False


@dataclass(frozen=True)
class IntrinsicEffect:
    """One direct effect source inside one function."""

    function: str | None  # module-relative qualname; None = module level
    effect: str  # "blocking" | "entropy" | "wall-clock" | "unpicklable"
    detail: str  # e.g. "time.sleep", "returns lambda"
    line: int
    col: int


@dataclass(frozen=True)
class SpecPlacement:
    """One argument handed to a spec/protocol factory call."""

    caller: str | None
    factory: str  # the factory name as written, e.g. "RunSpec"
    ref: Ref  # the argument (bare reference) or its producing call
    is_call: bool  # True: argument is ``f(...)``; False: ``f`` itself
    line: int
    col: int


@dataclass(frozen=True)
class FunctionDecl:
    """One function or method declaration."""

    qualname: str  # module-relative: "fn", "Class.m", "fn.<locals>.g"
    line: int
    col: int
    is_async: bool
    class_name: str | None  # immediate enclosing class, if any
    #: inside a Protocol-interface class body (determinism scope)
    protocol_scope: bool = False


@dataclass(frozen=True)
class ClassDecl:
    """One module-level class declaration."""

    name: str
    bases: tuple[str, ...]  # dotted texts as written
    methods: tuple[str, ...]
    #: attribute name → dotted class text, from ``self.x = param`` with
    #: an annotated parameter, or ``self.x: T`` / class-body ``x: T``
    attr_types: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True)
class FileSummary:
    """Everything phase 2 needs to know about one parsed file."""

    display_path: str
    sha256: str
    module: str | None
    functions: tuple[FunctionDecl, ...] = ()
    classes: tuple[ClassDecl, ...] = ()
    imports: tuple[tuple[str, str], ...] = ()  # local name -> dotted origin
    calls: tuple[CallSite, ...] = ()
    intrinsics: tuple[IntrinsicEffect, ...] = ()
    placements: tuple[SpecPlacement, ...] = ()
    suppressions: tuple[tuple[int, tuple[str, ...]], ...] = ()
    findings: tuple[LintFinding, ...] = ()  # per-file rule findings

    def import_map(self) -> dict[str, str]:
        return dict(self.imports)

    def suppressed(self, rule: str, line: int) -> bool:
        for lineno, rules in self.suppressions:
            if lineno == line and rule in rules:
                return True
        return False


# -- intrinsic effect catalogs ----------------------------------------------

#: module roots tracked for alias-aware origin resolution
_TRACKED_ROOTS = frozenset(
    {
        "time",
        "datetime",
        "os",
        "uuid",
        "secrets",
        "random",
        "subprocess",
        "urllib",
        "requests",
        "socket",
        "threading",
    }
)

_BLOCKING_ORIGINS = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "urllib.request.urlopen",
        "socket.create_connection",
        "os.fsync",
        "os.fdatasync",
    }
)

#: method names that do synchronous file I/O (the pathlib idiom); only
#: counted when the receiver does not resolve to a tracked module
_BLOCKING_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)

_WALL_CLOCK_ORIGINS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_ENTROPY_ORIGINS = frozenset(
    {
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "random.SystemRandom",
    }
)

#: constructors whose return values never pickle
_UNPICKLABLE_ORIGINS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "socket.socket",
    }
)


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name → dotted origin for the tracked stdlib modules."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _TRACKED_ROOTS:
                    aliases[alias.asname or root] = (
                        alias.name if alias.asname else root
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] in _TRACKED_ROOTS:
                for alias in node.names:
                    aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
    return aliases


def _resolve_origin(aliases: Mapping[str, str], node: ast.expr) -> str | None:
    """Dotted origin of an attribute chain via the import alias map."""
    parts: list[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    base = aliases.get(cur.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def _dotted_text(node: ast.expr) -> str | None:
    """The source-level dotted text of a Name/Attribute chain."""
    parts: list[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    parts.append(cur.id)
    return ".".join(reversed(parts))


def _annotation_text(node: ast.expr | None) -> str | None:
    """Best-effort dotted class text of an annotation.

    ``Optional[T]`` / ``T | None`` unwrap to ``T``; anything else that
    is not a plain dotted name yields ``None``.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        for side in (node.left, node.right):
            if not (isinstance(side, ast.Constant) and side.value is None):
                return _annotation_text(side)
        return None
    if isinstance(node, ast.Subscript):
        base = _dotted_text(node.value)
        if base is not None and base.split(".")[-1] == "Optional":
            inner = node.slice
            return _annotation_text(inner)
        return None
    return _dotted_text(node)


class _SummaryBuilder(ast.NodeVisitor):
    """One pass over a module AST, extracting the :class:`FileSummary`."""

    def __init__(self, mod: ModuleUnderLint) -> None:
        self.mod = mod
        self.functions: list[FunctionDecl] = []
        self.classes: list[ClassDecl] = []
        self.calls: list[CallSite] = []
        self.intrinsics: list[IntrinsicEffect] = []
        self.placements: list[SpecPlacement] = []
        self.aliases = _import_aliases(mod.tree)
        self.imports = self._all_imports(mod.tree, mod.module)
        # scope state
        self._scope: list[str] = []  # qualname parts
        self._kinds: list[str] = []  # "class" | "func", parallel to _scope
        self._class: list[str] = []  # enclosing class names
        self._local_types: list[dict[str, str]] = []  # per-function var types
        self._local_funcs: list[set[str]] = []  # nested defs per function
        self._local_classes: list[set[str]] = []  # local classes per function
        self._return_depth = 0

    # -- imports -------------------------------------------------------------

    @staticmethod
    def _all_imports(tree: ast.Module, module: str | None) -> dict[str, str]:
        """Every import binding, with relative imports resolved."""
        out: dict[str, str] = {}
        package_parts = module.split(".")[:-1] if module else []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        out[alias.asname] = alias.name
                    else:
                        out[alias.name.split(".")[0]] = alias.name.split(".")[0]
                        # ``import a.b`` binds ``a``; the full dotted
                        # path is reachable via attr chains from it.
                        if "." in alias.name:
                            out.setdefault(alias.name, alias.name)
            elif isinstance(node, ast.ImportFrom):
                base: str | None
                if node.level:
                    anchor = package_parts[: len(package_parts) - (node.level - 1)]
                    if node.level - 1 > len(package_parts):
                        base = None
                    else:
                        base = ".".join(anchor + ([node.module] if node.module else []))
                else:
                    base = node.module
                if not base:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    out[alias.asname or alias.name] = f"{base}.{alias.name}"
        return out

    # -- scope plumbing ------------------------------------------------------

    @property
    def _qualname(self) -> str | None:
        return ".".join(self._scope) if self._scope else None

    def _enter_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if self._kinds and self._kinds[-1] == "func":
            self._scope.extend(["<locals>", node.name])
            self._kinds.extend(["<locals>", "func"])
            if self._local_funcs:
                self._local_funcs[-1].add(node.name)
        else:
            self._scope.append(node.name)
            self._kinds.append("func")
        qualname = self._qualname
        assert qualname is not None
        self.functions.append(
            FunctionDecl(
                qualname=qualname,
                line=node.lineno,
                col=node.col_offset,
                is_async=isinstance(node, ast.AsyncFunctionDef),
                class_name=self._class[-1] if self._class else None,
                protocol_scope=self.mod.in_protocol_class(node),
            )
        )
        types: dict[str, str] = {}
        args = node.args
        for arg in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
        ]:
            text = _annotation_text(arg.annotation)
            if text is not None:
                types[arg.arg] = text
        self._local_types.append(types)
        self._local_funcs.append(set())
        self._local_classes.append(set())

    def _exit_function(self) -> None:
        if len(self._scope) >= 3 and self._scope[-2] == "<locals>":
            del self._scope[-2:]
            del self._kinds[-2:]
        else:
            self._scope.pop()
            self._kinds.pop()
        self._local_types.pop()
        self._local_funcs.pop()
        self._local_classes.pop()

    # -- visitors ------------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._scope:
            # Local (or nested) class: record for unpicklable detection,
            # then walk its body as part of the enclosing scope.
            if self._local_classes:
                self._local_classes[-1].add(node.name)
            self.generic_visit(node)
            return
        bases = tuple(
            text for text in (_dotted_text(b) for b in node.bases) if text
        )
        methods: list[str] = []
        attr_types: dict[str, str] = {}
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods.append(stmt.name)
                if stmt.name == "__init__":
                    attr_types.update(self._init_attr_types(stmt))
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                text = _annotation_text(stmt.annotation)
                if text is not None:
                    attr_types.setdefault(stmt.target.id, text)
        self._class.append(node.name)
        self._scope.append(node.name)
        self._kinds.append("class")
        for stmt in node.body:
            self.visit(stmt)
        self._scope.pop()
        self._kinds.pop()
        self._class.pop()
        self.classes.append(
            ClassDecl(
                name=node.name,
                bases=bases,
                methods=tuple(methods),
                attr_types=tuple(sorted(attr_types.items())),
            )
        )

    @staticmethod
    def _init_attr_types(
        init: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> dict[str, str]:
        """``self.x = param`` bindings whose parameter is annotated."""
        param_types: dict[str, str] = {}
        args = init.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            text = _annotation_text(arg.annotation)
            if text is not None:
                param_types[arg.arg] = text
        out: dict[str, str] = {}
        for stmt in ast.walk(init):
            if isinstance(stmt, ast.AnnAssign):
                target = stmt.target
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    text = _annotation_text(stmt.annotation)
                    if text is not None:
                        out.setdefault(target.attr, text)
            elif isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Name):
                text = param_types.get(stmt.value.id)
                if text is None:
                    continue
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        out.setdefault(target.attr, text)
        return out

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function(node)

    def _function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self._enter_function(node)
        for stmt in node.body:
            self.visit(stmt)
        self._exit_function()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        # A lambda is its own scope; calls inside it never run on the
        # enclosing scope's stack, so they are attributed nowhere (the
        # conservative choice: no edge rather than a wrong edge).
        pass

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_local_type(node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self._local_types and isinstance(node.target, ast.Name):
            text = _annotation_text(node.annotation)
            if text is not None:
                self._local_types[-1][node.target.id] = text
        self.generic_visit(node)

    def _record_local_type(self, node: ast.Assign) -> None:
        """``x = SomeClass(...)`` binds x's type for typed refs."""
        if not self._local_types or len(node.targets) != 1:
            return
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            return
        value = node.value
        if isinstance(value, ast.Call):
            text = _dotted_text(value.func)
            if text is not None and text.split(".")[-1][:1].isupper():
                self._local_types[-1][target.id] = text
                return
        # Rebinding to anything else invalidates a previous typing.
        self._local_types[-1].pop(target.id, None)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is None:
            return
        self._return_depth += 1
        self._scan_return_value(node.value)
        self.visit(node.value)
        self._return_depth -= 1

    def _scan_return_value(self, value: ast.expr) -> None:
        """Unpicklable-capture intrinsics visible in a return expression."""
        qualname = self._qualname
        for sub in ast.walk(value):
            if isinstance(sub, ast.Lambda):
                self.intrinsics.append(
                    IntrinsicEffect(
                        qualname,
                        "unpicklable",
                        "returns a lambda",
                        sub.lineno,
                        sub.col_offset,
                    )
                )
            elif isinstance(sub, ast.Call):
                name = _dotted_text(sub.func)
                if (
                    name is not None
                    and self._local_classes
                    and name in self._local_classes[-1]
                ):
                    self.intrinsics.append(
                        IntrinsicEffect(
                            qualname,
                            "unpicklable",
                            f"returns an instance of local class {name!r}",
                            sub.lineno,
                            sub.col_offset,
                        )
                    )
                    continue
                origin = _resolve_origin(self.aliases, sub.func)
                if origin in _UNPICKLABLE_ORIGINS:
                    self.intrinsics.append(
                        IntrinsicEffect(
                            qualname,
                            "unpicklable",
                            f"returns {origin}()",
                            sub.lineno,
                            sub.col_offset,
                        )
                    )
                elif isinstance(sub.func, ast.Name) and sub.func.id == "open":
                    self.intrinsics.append(
                        IntrinsicEffect(
                            qualname,
                            "unpicklable",
                            "returns an open file handle",
                            sub.lineno,
                            sub.col_offset,
                        )
                    )

    def visit_Call(self, node: ast.Call) -> None:
        qualname = self._qualname
        self._record_intrinsics(node, qualname)
        ref = self._reference(node.func)
        if ref is not None:
            self.calls.append(
                CallSite(
                    caller=qualname,
                    ref=ref,
                    line=node.lineno,
                    col=node.col_offset,
                    in_return=self._return_depth > 0,
                )
            )
        self._record_placements(node, qualname)
        # Executor-shipped callables: arguments to run_in_executor /
        # to_thread run off-loop, so references there create no edge —
        # visiting the arguments still records *their* nested calls
        # (e.g. a computed argument expression executes on the loop).
        self.generic_visit(node)

    def _record_intrinsics(self, node: ast.Call, qualname: str | None) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            self.intrinsics.append(
                IntrinsicEffect(
                    qualname, "blocking", "open()", node.lineno, node.col_offset
                )
            )
            return
        origin = _resolve_origin(self.aliases, func)
        if origin is None:
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _BLOCKING_METHODS
            ):
                self.intrinsics.append(
                    IntrinsicEffect(
                        qualname,
                        "blocking",
                        f".{func.attr}()",
                        node.lineno,
                        node.col_offset,
                    )
                )
            return
        if origin in _BLOCKING_ORIGINS:
            effect, detail = "blocking", origin
        elif origin in _WALL_CLOCK_ORIGINS:
            effect, detail = "wall-clock", origin
        elif origin in _ENTROPY_ORIGINS or origin.startswith("secrets."):
            effect, detail = "entropy", origin
        elif origin.startswith("random."):
            leaf = origin.split(".", 1)[1]
            if leaf == "Random" or "." in leaf:
                return  # seeded construction / instance method path
            effect, detail = "entropy", origin
        else:
            return
        self.intrinsics.append(
            IntrinsicEffect(qualname, effect, detail, node.lineno, node.col_offset)
        )

    def _reference(self, func: ast.expr) -> Ref | None:
        if isinstance(func, ast.Name):
            return Ref("name", (func.id,))
        if not isinstance(func, ast.Attribute):
            return None
        parts: list[str] = []
        cur: ast.expr = func
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        parts.reverse()
        root = cur.id
        if root in {"self", "cls"}:
            if len(parts) == 1:
                return Ref("self", (parts[0],))
            if len(parts) == 2:
                # self.<attr>.<method>() — resolved via attr types
                return Ref("attr", ("self", parts[0], parts[1]))
            return None
        if (
            len(parts) == 1
            and self._local_types
            and root in self._local_types[-1]
        ):
            return Ref("typed", (self._local_types[-1][root], parts[0]))
        return Ref("attr", (root, *parts))

    def _record_placements(self, node: ast.Call, qualname: str | None) -> None:
        name = None
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr
        if name not in SPEC_FACTORY_NAMES:
            return
        args: list[ast.expr] = list(node.args)
        args.extend(kw.value for kw in node.keywords)
        for arg in args:
            if isinstance(arg, ast.Call):
                ref = self._reference(arg.func)
                if ref is not None:
                    self.placements.append(
                        SpecPlacement(
                            caller=qualname,
                            factory=name,
                            ref=ref,
                            is_call=True,
                            line=arg.lineno,
                            col=arg.col_offset,
                        )
                    )
            elif isinstance(arg, (ast.Name, ast.Attribute)):
                ref = self._reference(arg)
                if ref is not None:
                    self.placements.append(
                        SpecPlacement(
                            caller=qualname,
                            factory=name,
                            ref=ref,
                            is_call=False,
                            line=arg.lineno,
                            col=arg.col_offset,
                        )
                    )


def summarize(
    mod: ModuleUnderLint, sha256: str, findings: Sequence[LintFinding]
) -> FileSummary:
    """Build the :class:`FileSummary` for one parsed file."""
    builder = _SummaryBuilder(mod)
    for stmt in mod.tree.body:
        builder.visit(stmt)
    suppressions = tuple(
        sorted(
            (line, tuple(sorted(entry.rules)))
            for line, entry in mod.suppressions.items()
        )
    )
    return FileSummary(
        display_path=mod.display_path,
        sha256=sha256,
        module=mod.module,
        functions=tuple(builder.functions),
        classes=tuple(builder.classes),
        imports=tuple(sorted(builder.imports.items())),
        calls=tuple(builder.calls),
        intrinsics=tuple(builder.intrinsics),
        placements=tuple(builder.placements),
        suppressions=suppressions,
        findings=tuple(findings),
    )


@dataclass
class ProjectIndex:
    """The joined phase-1 view of every linted file.

    Global function names are ``<module-key>::<qualname>`` where the
    module key is the dotted module name when known, else the display
    path (fixture files without a ``lint-module`` override still form
    their own single-file scope).
    """

    summaries: tuple[FileSummary, ...]
    modules: dict[str, FileSummary] = field(default_factory=dict)
    functions: dict[str, FunctionDecl] = field(default_factory=dict)
    function_files: dict[str, FileSummary] = field(default_factory=dict)
    classes: dict[str, ClassDecl] = field(default_factory=dict)

    @classmethod
    def build(cls, summaries: Sequence[FileSummary]) -> "ProjectIndex":
        index = cls(summaries=tuple(summaries))
        for summary in summaries:
            key = index.module_key(summary)
            index.modules[key] = summary
            for fn in summary.functions:
                gqn = f"{key}::{fn.qualname}"
                index.functions[gqn] = fn
                index.function_files[gqn] = summary
            for klass in summary.classes:
                index.classes[f"{key}::{klass.name}"] = klass
        return index

    @staticmethod
    def module_key(summary: FileSummary) -> str:
        return summary.module or summary.display_path

    def summary_for(self, gqn: str) -> FileSummary:
        return self.function_files[gqn]

    def declaration(self, gqn: str) -> FunctionDecl:
        return self.functions[gqn]

    def iter_functions(self) -> Iterator[tuple[str, FunctionDecl, FileSummary]]:
        for gqn in sorted(self.functions):
            yield gqn, self.functions[gqn], self.function_files[gqn]
