"""Pluggable rule registry.

A rule is a named, documented check.  File rules (:class:`Rule`) check
one :class:`ModuleUnderLint`; project rules (:class:`ProjectRule`)
check the whole-program :class:`~repro.lint.project.ProjectIndex` after
every file is summarized, which is how the transitive rules (ASY003,
DET007, POOL004) see through helper functions.  Rules self-register at
import time via :func:`register`; the engine and CLI discover them
through :func:`all_rules` / :func:`select_rules`, so adding a rule is
one subclass in ``repro.lint.rules`` with no wiring.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator

from .context import ModuleUnderLint
from .findings import LintFinding, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .effects import EffectAnalysis
    from .project import ProjectIndex


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding raw findings; the engine applies suppression comments and
    severity filtering afterwards.
    """

    #: unique rule id, e.g. ``"DET001"``
    id: str = ""
    #: one-line summary shown by ``--list-rules``
    summary: str = ""
    #: default severity (the engine reports it on each finding)
    severity: Severity = Severity.ERROR
    #: general remediation attached to each finding
    hint: str = ""

    def check(self, mod: ModuleUnderLint) -> Iterator[LintFinding]:
        raise NotImplementedError

    def finding(
        self, mod: ModuleUnderLint, line: int, col: int, message: str
    ) -> LintFinding:
        """Build a finding with this rule's id/severity/hint filled in."""
        return LintFinding(
            file=mod.display_path,
            line=line,
            col=col,
            rule=self.id,
            severity=self.severity,
            message=message,
            hint=self.hint,
        )


class ProjectRule(Rule):
    """Base class for whole-program rules.

    Subclasses implement :meth:`check_project` over the phase-2 index
    and effect analysis instead of :meth:`check`; the engine applies
    suppression comments afterwards using the per-file tables carried
    in the summaries.
    """

    def check(self, mod: ModuleUnderLint) -> Iterator[LintFinding]:
        # Project rules never run per file; the engine routes them
        # through check_project after the index is built.
        return iter(())

    def check_project(
        self, project: "ProjectIndex", effects: "EffectAnalysis"
    ) -> Iterator[LintFinding]:
        raise NotImplementedError

    def finding_at(
        self, file: str, line: int, col: int, message: str
    ) -> LintFinding:
        """Build a finding at an explicit location (no module context)."""
        return LintFinding(
            file=file,
            line=line,
            col=col,
            rule=self.id,
            severity=self.severity,
            message=message,
            hint=self.hint,
        )


_RULES: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and add a rule to the registry."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _RULES[rule.id] = rule
    return cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, ordered by id."""
    _ensure_loaded()
    return tuple(_RULES[rid] for rid in sorted(_RULES))


def known_rule_ids() -> frozenset[str]:
    _ensure_loaded()
    return frozenset(_RULES)


def select_rules(select: Callable[[str], bool] | None = None) -> tuple[Rule, ...]:
    """Rules passing the ``select`` predicate (all rules when ``None``)."""
    rules = all_rules()
    if select is None:
        return rules
    return tuple(rule for rule in rules if select(rule.id))


def _ensure_loaded() -> None:
    # Importing the rules package triggers @register side effects; the
    # local import breaks the registry <-> rules import cycle.
    from . import rules  # noqa: F401
