"""SARIF 2.1.0 export.

SARIF is the interchange format CI code-scanning UIs ingest; emitting
it directly means findings annotate pull requests without an adapter.
The document is deterministic: rules sorted by id, results in the
report's already-sorted order, no timestamps.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import LintReport
    from .registry import Rule

#: SARIF spec version emitted
SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning"}


def to_sarif(report: "LintReport", rules: Sequence["Rule"]) -> dict[str, object]:
    """The report as a SARIF 2.1.0 log with a single run."""
    rule_ids = sorted({f.rule for f in report.findings})
    by_id = {rule.id: rule for rule in rules}
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}
    driver_rules: list[dict[str, object]] = []
    for rid in rule_ids:
        rule = by_id.get(rid)
        entry: dict[str, object] = {"id": rid}
        if rule is not None:
            entry["shortDescription"] = {"text": rule.summary}
            if rule.hint:
                entry["help"] = {"text": rule.hint}
            entry["defaultConfiguration"] = {
                "level": _LEVELS.get(rule.severity.value, "warning")
            }
        driver_rules.append(entry)
    results: list[dict[str, object]] = []
    for finding in report.findings:
        results.append(
            {
                "ruleId": finding.rule,
                "ruleIndex": rule_index[finding.rule],
                "level": _LEVELS.get(finding.severity.value, "warning"),
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": finding.file},
                            "region": {
                                "startLine": finding.line,
                                # SARIF columns are 1-based; findings
                                # carry the AST's 0-based offset.
                                "startColumn": finding.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    for error in report.parse_errors:
        results.append(
            {
                "ruleId": "parse-error",
                "level": "error",
                "message": {"text": error},
            }
        )
    return {
        "$schema": _SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri": (
                            "https://example.invalid/repro/lint"
                        ),
                        "rules": driver_rules,
                    }
                },
                "results": results,
            }
        ],
    }
