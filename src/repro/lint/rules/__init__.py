"""Rule implementations; importing this package registers every rule."""

from . import asyncrules, determinism, invariants, meta, poolsafety

__all__ = ["asyncrules", "determinism", "invariants", "meta", "poolsafety"]
