"""Rule implementations; importing this package registers every rule."""

from . import (
    asyncrules,
    determinism,
    invariants,
    meta,
    poolsafety,
    wholeprogram,
)

__all__ = [
    "asyncrules",
    "determinism",
    "invariants",
    "meta",
    "poolsafety",
    "wholeprogram",
]
