"""Rule implementations; importing this package registers every rule."""

from . import determinism, invariants, meta, poolsafety

__all__ = ["determinism", "invariants", "meta", "poolsafety"]
