"""Suppression-hygiene rule (LNT001).

Suppressions are load-bearing documentation: a typo'd rule id silently
waives nothing while looking like it waives something.
"""

from __future__ import annotations

from typing import Iterator

from ..context import ModuleUnderLint
from ..findings import LintFinding
from ..registry import Rule, known_rule_ids, register


@register
class SuppressionHygieneRule(Rule):
    """LNT001: malformed ``lint-ok`` comments and unknown rule ids."""

    id = "LNT001"
    summary = "malformed or unknown lint-ok suppression"
    hint = (
        "use '# repro: lint-ok[RULE1,RULE2]' with ids from "
        "'harness lint --list-rules'"
    )

    def check(self, mod: ModuleUnderLint) -> Iterator[LintFinding]:
        for line in mod.malformed_suppressions:
            yield self.finding(
                mod,
                line,
                0,
                "malformed suppression comment (expected "
                "'# repro: lint-ok[RULE,...]')",
            )
        known = known_rule_ids()
        for entry in mod.suppressions.values():
            for rule_id in sorted(entry.rules - known):
                yield self.finding(
                    mod,
                    entry.line,
                    0,
                    f"suppression names unknown rule {rule_id!r}",
                )
