"""Determinism rules (DET001–DET006).

Replay, the content-addressed run cache, and the explorer's coordinate
replay all assume that a (protocol, seed, crash plan) triple yields a
bit-identical run.  Anything that injects ambient state — the global
RNG, the wall clock, OS entropy, set iteration order, or object
identity — silently breaks that contract, which in turn corrupts the
run set the epistemic kernel evaluates ``Knows``/``C_G`` over.

Scope: these rules fire in the deterministic packages
(:data:`DET_PACKAGES`) and inside any class implementing the Protocol
interface wherever it lives.  ``repro.runtime``/``repro.faults``/
``repro.harness`` are driver-side and exempt (they may time out, retry,
and log wall-clock freely).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..context import ModuleUnderLint
from ..findings import LintFinding
from ..registry import Rule, register

#: packages whose entire contents must be deterministic
DET_PACKAGES: tuple[str, ...] = (
    "repro.core",
    "repro.sim",
    "repro.model",
    "repro.knowledge",
    "repro.explore",
    "repro.detectors",
    "repro.workloads",
)

#: module roots whose imports we track for alias-aware call resolution
_TRACKED_ROOTS = frozenset({"random", "time", "datetime", "os", "uuid", "secrets"})

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_ENTROPY = frozenset(
    {
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "random.SystemRandom",
    }
)

#: builtins that consume an iterable order-insensitively (or sort it)
_ORDER_SAFE_CALLS = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset"}
)


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to dotted origins for the tracked modules.

    ``import random as r`` -> ``{"r": "random"}``;
    ``from random import shuffle as s`` -> ``{"s": "random.shuffle"}``;
    ``from datetime import datetime`` -> ``{"datetime": "datetime.datetime"}``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _TRACKED_ROOTS:
                    aliases[alias.asname or root] = (
                        alias.name if alias.asname else root
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] in _TRACKED_ROOTS:
                for alias in node.names:
                    aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
    return aliases


def _resolve(aliases: dict[str, str], node: ast.expr) -> str | None:
    """Dotted origin of an attribute chain, via the import alias map."""
    parts: list[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    base = aliases.get(cur.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def _scoped(mod: ModuleUnderLint, node: ast.AST) -> bool:
    """Is this node inside the determinism scope?"""
    return mod.in_packages(DET_PACKAGES) or mod.in_protocol_class(node)


def _iter_scoped_calls(
    mod: ModuleUnderLint,
) -> Iterator[tuple[ast.Call, dict[str, str]]]:
    aliases = _import_aliases(mod.tree)
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Call) and _scoped(mod, node):
            yield node, aliases


@register
class UnseededRandomRule(Rule):
    """DET001: the module-level ``random.*`` API shares one global,
    ambiently-seeded RNG; two runs interleaved in one process perturb
    each other's streams and replay diverges."""

    id = "DET001"
    summary = "call into the global random module (unseeded RNG)"
    hint = (
        "draw from a seeded random.Random instance carried by the run "
        "(e.g. Executor.rng), never the random module's global functions"
    )

    def check(self, mod: ModuleUnderLint) -> Iterator[LintFinding]:
        for call, aliases in _iter_scoped_calls(mod):
            origin = _resolve(aliases, call.func)
            if origin is None or not origin.startswith("random."):
                continue
            leaf = origin.split(".", 1)[1]
            if leaf == "SystemRandom" or "." in leaf:
                continue  # DET003 territory / method on an instance path
            if leaf == "Random":
                if not call.args and not call.keywords:
                    yield self.finding(
                        mod,
                        call.lineno,
                        call.col_offset,
                        "random.Random() constructed without a seed",
                    )
                continue
            yield self.finding(
                mod,
                call.lineno,
                call.col_offset,
                f"call to global random.{leaf}()",
            )


@register
class WallClockRule(Rule):
    """DET002: wall-clock reads differ across replays and across
    workers, so any value derived from them poisons run content and
    cache digests.  ``time.perf_counter``/``time.monotonic`` are left
    alone: the executor's cooperative deadline uses them and they never
    enter run content."""

    id = "DET002"
    summary = "wall-clock read (time.time / datetime.now / ...)"
    hint = (
        "model time with the simulated tick counter; wall-clock values "
        "must never reach run content (driver-side timing belongs in "
        "repro.runtime)"
    )

    def check(self, mod: ModuleUnderLint) -> Iterator[LintFinding]:
        for call, aliases in _iter_scoped_calls(mod):
            origin = _resolve(aliases, call.func)
            if origin in _WALL_CLOCK:
                yield self.finding(
                    mod,
                    call.lineno,
                    call.col_offset,
                    f"wall-clock call {origin}()",
                )


@register
class AmbientEntropyRule(Rule):
    """DET003: OS entropy (``os.urandom``, ``uuid4``, ``secrets``) is
    unreplayable by construction — there is no seed to record."""

    id = "DET003"
    summary = "ambient entropy source (os.urandom / uuid4 / secrets)"
    hint = (
        "derive identifiers and randomness from the run's seeded RNG or "
        "from content hashes of deterministic state"
    )

    def check(self, mod: ModuleUnderLint) -> Iterator[LintFinding]:
        for call, aliases in _iter_scoped_calls(mod):
            origin = _resolve(aliases, call.func)
            if origin is None:
                continue
            if origin in _ENTROPY or origin.startswith("secrets."):
                yield self.finding(
                    mod,
                    call.lineno,
                    call.col_offset,
                    f"ambient entropy call {origin}()",
                )


class _SetishIndex:
    """Best-effort inference of which expressions/names are bare sets."""

    def __init__(self, tree: ast.Module) -> None:
        self.set_names: set[str] = set()
        unset: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if self._is_setish_expr(node.value):
                            self.set_names.add(target.id)
                        else:
                            unset.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if self._is_set_annotation(node.annotation):
                    self.set_names.add(node.target.id)
                else:
                    unset.add(node.target.id)
            elif isinstance(node, ast.arg) and node.annotation is not None:
                if self._is_set_annotation(node.annotation):
                    self.set_names.add(node.arg)
        # A name ever bound to a non-set value is ambiguous: stay quiet.
        self.set_names -= unset

    @staticmethod
    def _is_setish_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in {"set", "frozenset"}
        return False

    @staticmethod
    def _is_set_annotation(node: ast.expr) -> bool:
        target = node
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Name):
            return target.id in {"set", "frozenset", "Set", "FrozenSet", "AbstractSet"}
        if isinstance(target, ast.Attribute):
            return target.attr in {"Set", "FrozenSet", "AbstractSet"}
        return False

    def is_setish(self, node: ast.expr) -> bool:
        if self._is_setish_expr(node):
            return True
        return isinstance(node, ast.Name) and node.id in self.set_names


@register
class SetIterationRule(Rule):
    """DET004: set iteration order depends on insertion history and the
    per-process hash state, so iterating a bare set leaks
    nondeterministic order into traces, digests, and message schedules.
    Order-insensitive consumers (``sorted``/``min``/``len``/...) are
    exempt."""

    id = "DET004"
    summary = "iteration over a bare set (nondeterministic order)"
    hint = (
        "wrap the set in sorted(...) before iterating, or keep the "
        "collection as a list/tuple when order matters"
    )

    def check(self, mod: ModuleUnderLint) -> Iterator[LintFinding]:
        index = _SetishIndex(mod.tree)
        safe_iters: set[int] = set()
        for node in ast.walk(mod.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_SAFE_CALLS
            ):
                for arg in node.args:
                    safe_iters.add(id(arg))
                    # ``sum(f(x) for x in s)`` consumes the *comprehension*
                    # order-insensitively, so its generators are safe too
                    if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
                        for gen in arg.generators:
                            safe_iters.add(id(gen.iter))

        def flag(expr: ast.expr, what: str) -> Iterator[LintFinding]:
            if id(expr) in safe_iters:
                return
            if index.is_setish(expr):
                yield self.finding(
                    mod,
                    expr.lineno,
                    expr.col_offset,
                    f"{what} iterates a bare set in nondeterministic order",
                )

        for node in ast.walk(mod.tree):
            if not _scoped(mod, node):
                continue
            if isinstance(node, ast.For):
                yield from flag(node.iter, "for loop")
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    yield from flag(gen.iter, "comprehension")
            elif isinstance(node, ast.Call):
                if isinstance(node.func, ast.Name) and node.func.id in {
                    "list",
                    "tuple",
                }:
                    for arg in node.args:
                        yield from flag(arg, f"{node.func.id}()")
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                ):
                    for arg in node.args:
                        yield from flag(arg, "str.join()")


@register
class IdentityKeyRule(Rule):
    """DET005: ``id()`` values are reused after garbage collection and
    differ across processes, so identity-keyed state aliases unrelated
    objects and never survives pickling.  Every use in deterministic
    code needs an explicit pinning argument (see
    ``ModelChecker._foreign_refs``) recorded in a suppression."""

    id = "DET005"
    summary = "id()-derived key or comparison"
    hint = (
        "key by value (or an interned canonical object); if identity "
        "keying is required, pin a strong reference for the key's "
        "lifetime and document it with a lint-ok suppression"
    )

    def check(self, mod: ModuleUnderLint) -> Iterator[LintFinding]:
        for node in ast.walk(mod.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
                and _scoped(mod, node)
            ):
                yield self.finding(
                    mod,
                    node.lineno,
                    node.col_offset,
                    "id()-keyed state in deterministic code",
                )


#: worklist-flavoured names whose iteration order the explorer's
#: shard-merge and dedup contracts depend on
_WORKLIST_NAME = re.compile(
    r"(?:^|_)(frontier|sleep|orbit|worklist)(?:_|s?$|set)", re.IGNORECASE
)

#: constructors whose results iterate in a defined, stable order
_ORDERED_CALLS = frozenset({"list", "tuple", "deque", "sorted", "reversed"})

_ORDERED_ANNOTATIONS = frozenset(
    {"list", "tuple", "deque", "List", "Tuple", "Deque", "Sequence"}
)


class _WorklistIndex:
    """Which worklist-named locals are *provably* ordered?

    A name is provably ordered when every binding we can see is a list/
    tuple literal, a comprehension, an ordered-constructor call
    (``list``/``tuple``/``deque``/``sorted``), or carries an ordered
    annotation.  One opaque or set-flavoured binding makes it suspect.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.ordered: set[str] = set()
        suspect: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and _WORKLIST_NAME.search(
                        target.id
                    ):
                        bucket = (
                            self.ordered
                            if self._is_ordered_expr(node.value)
                            else suspect
                        )
                        bucket.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if _WORKLIST_NAME.search(node.target.id):
                    if self._is_ordered_annotation(node.annotation):
                        self.ordered.add(node.target.id)
                    else:
                        suspect.add(node.target.id)
            elif isinstance(node, ast.arg) and _WORKLIST_NAME.search(node.arg):
                if node.annotation is not None and self._is_ordered_annotation(
                    node.annotation
                ):
                    self.ordered.add(node.arg)
                else:
                    suspect.add(node.arg)
        self.ordered -= suspect

    @staticmethod
    def _is_ordered_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Tuple, ast.ListComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            return name in _ORDERED_CALLS
        return False

    @staticmethod
    def _is_ordered_annotation(node: ast.expr) -> bool:
        target = node
        if isinstance(target, ast.Constant) and isinstance(target.value, str):
            # ``from __future__ import annotations`` stringizes nothing at
            # the AST level, but explicit string annotations do appear
            try:
                target = ast.parse(target.value, mode="eval").body
            except SyntaxError:  # pragma: no cover - malformed annotation
                return False
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Name):
            return target.id in _ORDERED_ANNOTATIONS
        if isinstance(target, ast.Attribute):
            return target.attr in _ORDERED_ANNOTATIONS
        return False


@register
class UnorderedWorklistRule(Rule):
    """DET006: the explorer's dedup, shard merge, and cache layers all
    assume frontier/worklist containers iterate in one deterministic
    order (results must be identical for any worker count).  Iterating a
    worklist-named container that is not provably an ordered sequence
    risks silently breaking that contract."""

    id = "DET006"
    summary = "iteration over a worklist container of unproven order"
    hint = (
        "keep frontier/sleep-set/orbit/worklist state in a list or "
        "deque (or iterate sorted(...)); sets and opaque values have no "
        "stable order and break worker-count-independent results"
    )

    #: only the explorer package carries the shard-merge contract
    _PACKAGES = ("repro.explore",)

    def check(self, mod: ModuleUnderLint) -> Iterator[LintFinding]:
        if not mod.in_packages(self._PACKAGES):
            return
        index = _WorklistIndex(mod.tree)
        safe_iters: set[int] = set()
        for node in ast.walk(mod.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_SAFE_CALLS
            ):
                for arg in node.args:
                    safe_iters.add(id(arg))
                    if isinstance(
                        arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)
                    ):
                        for gen in arg.generators:
                            safe_iters.add(id(gen.iter))

        def flag(expr: ast.expr, what: str) -> Iterator[LintFinding]:
            if id(expr) in safe_iters:
                return
            if (
                isinstance(expr, ast.Name)
                and _WORKLIST_NAME.search(expr.id)
                and expr.id not in index.ordered
            ):
                yield self.finding(
                    mod,
                    expr.lineno,
                    expr.col_offset,
                    f"{what} iterates worklist {expr.id!r} whose order "
                    f"is not provably deterministic",
                )

        for node in ast.walk(mod.tree):
            if isinstance(node, ast.For):
                yield from flag(node.iter, "for loop")
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    yield from flag(gen.iter, "comprehension")
            elif isinstance(node, ast.Call):
                if isinstance(node.func, ast.Name) and node.func.id in {
                    "list",
                    "tuple",
                    "enumerate",
                }:
                    for arg in node.args:
                        yield from flag(arg, f"{node.func.id}()")
