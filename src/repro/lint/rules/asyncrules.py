"""Async-safety rules (ASY001, ASY002).

The query service (:mod:`repro.serve`) runs every connected client on
one event loop: a single blocking call inside a coroutine stalls *all*
of them at once, which no test exercising one connection will notice.
ASY001 pins the invariant statically -- coroutines in the serve package
must off-load blocking work (``loop.run_in_executor``) or use the
asyncio-native equivalent (``asyncio.sleep``, stream APIs).

ASY002 pins the companion invariant: no *fire-and-forget* tasks.  A
task spawned by ``asyncio.create_task(...)`` whose handle is discarded
can be garbage-collected mid-flight, and -- worse for a robustness
suite -- its exceptions vanish into the "Task exception was never
retrieved" log instead of failing anything.  Every spawned task must be
retained (assigned, awaited, gathered, or registered in a tracking set)
so shutdown can drain it and its failures have an owner.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleUnderLint
from ..findings import LintFinding
from ..registry import Rule, register

#: packages whose coroutines must never block the event loop
ASYNC_PACKAGES: tuple[str, ...] = ("repro.serve",)

#: module roots tracked for alias-aware call resolution
_TRACKED_ROOTS = frozenset({"time", "subprocess", "requests", "urllib"})

#: dotted origins that block the calling thread
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "urllib.request.urlopen",
    }
)

#: method names that do synchronous file I/O (the pathlib idiom)
_BLOCKING_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local-name -> dotted-origin map for the tracked modules."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _TRACKED_ROOTS:
                    aliases[alias.asname or root] = (
                        alias.name if alias.asname else root
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] in _TRACKED_ROOTS:
                for alias in node.names:
                    aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
    return aliases


def _resolve(aliases: dict[str, str], node: ast.expr) -> str | None:
    """Dotted origin of an attribute chain, via the import alias map."""
    parts: list[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    base = aliases.get(cur.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def _coroutine_calls(fn: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Calls lexically on this coroutine's own stack.

    Nested ``def``/``async def``/``lambda`` bodies are separate scopes
    -- a sync thunk handed to ``run_in_executor`` *should* block, and a
    nested coroutine gets its own sweep from the outer walk.
    """
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class BlockingCallInCoroutineRule(Rule):
    """ASY001: a blocking call inside an event-loop coroutine freezes
    every connected client for its duration.  ``time.sleep``, the
    ``subprocess`` synchronous API, builtin ``open`` and the pathlib
    ``read_text``/``write_text`` family must not run on the loop."""

    id = "ASY001"
    summary = "blocking call inside an event-loop coroutine"
    hint = (
        "use the asyncio-native API (asyncio.sleep, stream readers) or "
        "off-load the blocking work with loop.run_in_executor(None, fn, ...)"
    )

    def check(self, mod: ModuleUnderLint) -> Iterator[LintFinding]:
        if not mod.in_packages(ASYNC_PACKAGES):
            return
        aliases = _import_aliases(mod.tree)
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for call in _coroutine_calls(node):
                func = call.func
                if isinstance(func, ast.Name) and func.id == "open":
                    yield self.finding(
                        mod,
                        call.lineno,
                        call.col_offset,
                        f"builtin open() inside coroutine {node.name!r} "
                        f"does synchronous file I/O on the event loop",
                    )
                    continue
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _BLOCKING_METHODS
                    and _resolve(aliases, func) is None
                ):
                    yield self.finding(
                        mod,
                        call.lineno,
                        call.col_offset,
                        f".{func.attr}() inside coroutine {node.name!r} "
                        f"does synchronous file I/O on the event loop",
                    )
                    continue
                origin = _resolve(aliases, func)
                if origin in _BLOCKING_CALLS:
                    yield self.finding(
                        mod,
                        call.lineno,
                        call.col_offset,
                        f"blocking call {origin}() inside coroutine "
                        f"{node.name!r} stalls every connected client",
                    )


#: spawning functions whose returned task must not be discarded
_SPAWN_CALLS = frozenset({"asyncio.create_task", "asyncio.ensure_future"})

#: attribute spellings of the same spawns on an event-loop object
#: (``loop.create_task(...)``); TaskGroup.create_task is exempt because
#: the group itself retains the task, so only loop-named receivers count.
_SPAWN_METHODS = frozenset({"create_task", "ensure_future"})


def _asyncio_aliases(tree: ast.Module) -> dict[str, str]:
    """Local-name -> dotted-origin map for the asyncio module."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "asyncio":
                    aliases[alias.asname or "asyncio"] = (
                        alias.name if alias.asname else "asyncio"
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "asyncio":
                for alias in node.names:
                    aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
    return aliases


def _is_fire_and_forget_spawn(call: ast.Call, aliases: dict[str, str]) -> bool:
    """Does this call spawn a task (so discarding its result loses it)?"""
    origin = _resolve(aliases, call.func)
    if origin in _SPAWN_CALLS:
        return True
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _SPAWN_METHODS
        and isinstance(func.value, ast.Name)
        and (func.value.id == "loop" or func.value.id.endswith("_loop"))
    ):
        return True
    return False


@register
class FireAndForgetTaskRule(Rule):
    """ASY002: a task spawned without retaining its handle can be
    garbage-collected mid-flight, and its exceptions are silently
    swallowed -- exactly the failures a robustness layer must surface.
    Assign the task, await it, or register it in a tracked set with a
    done-callback."""

    id = "ASY002"
    summary = "fire-and-forget asyncio task (spawned handle discarded)"
    hint = (
        "retain the task: assign it (and cancel/await it on teardown), "
        "await it, or add it to a tracked set with a done-callback"
    )

    def check(self, mod: ModuleUnderLint) -> Iterator[LintFinding]:
        if not mod.in_packages(ASYNC_PACKAGES):
            return
        aliases = _asyncio_aliases(mod.tree)
        for node in ast.walk(mod.tree):
            # A spawn as a bare expression statement: the only reference
            # to the new task is dropped on the spot.
            discarded: ast.Call | None = None
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                discarded = node.value
            elif (
                # `_ = create_task(...)` discards just as surely.
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and all(
                    isinstance(t, ast.Name) and t.id == "_" for t in node.targets
                )
            ):
                discarded = node.value
            if discarded is None or not _is_fire_and_forget_spawn(
                discarded, aliases
            ):
                continue
            yield self.finding(
                mod,
                discarded.lineno,
                discarded.col_offset,
                "task spawned and immediately discarded: it may be "
                "garbage-collected mid-flight and its exceptions are "
                "never observed",
            )
