"""Async-safety rules (ASY001, ASY002, ASY004).

The query service (:mod:`repro.serve`) runs every connected client on
one event loop: a single blocking call inside a coroutine stalls *all*
of them at once, which no test exercising one connection will notice.
ASY001 pins the invariant statically -- coroutines in the serve package
must off-load blocking work (``loop.run_in_executor``) or use the
asyncio-native equivalent (``asyncio.sleep``, stream APIs).

ASY002 pins the companion invariant: no *fire-and-forget* tasks.  A
task spawned by ``asyncio.create_task(...)`` whose handle is discarded
can be garbage-collected mid-flight, and -- worse for a robustness
suite -- its exceptions vanish into the "Task exception was never
retrieved" log instead of failing anything.  Every spawned task must be
retained (assigned, awaited, gathered, or registered in a tracking set)
so shutdown can drain it and its failures have an owner.

ASY004 catches the subtler cousin of blocking: a *read-modify-write of
shared state that straddles an ``await``*.  Between the read and the
write the event loop may run any other coroutine, so the write
clobbers concurrent updates -- the classic lost-update race, invisible
to every single-connection test.  The fix is to hold the matching
``asyncio.Lock`` across the whole span (the serve package's
``_session_locks`` discipline), which the rule recognizes and accepts.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleUnderLint
from ..findings import LintFinding, Severity
from ..registry import Rule, register

#: packages whose coroutines must never block the event loop
ASYNC_PACKAGES: tuple[str, ...] = ("repro.serve",)

#: module roots tracked for alias-aware call resolution
_TRACKED_ROOTS = frozenset({"time", "subprocess", "requests", "urllib"})

#: dotted origins that block the calling thread
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "urllib.request.urlopen",
    }
)

#: method names that do synchronous file I/O (the pathlib idiom)
_BLOCKING_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local-name -> dotted-origin map for the tracked modules."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _TRACKED_ROOTS:
                    aliases[alias.asname or root] = (
                        alias.name if alias.asname else root
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] in _TRACKED_ROOTS:
                for alias in node.names:
                    aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
    return aliases


def _resolve(aliases: dict[str, str], node: ast.expr) -> str | None:
    """Dotted origin of an attribute chain, via the import alias map."""
    parts: list[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    base = aliases.get(cur.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def _coroutine_calls(fn: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Calls lexically on this coroutine's own stack.

    Nested ``def``/``async def``/``lambda`` bodies are separate scopes
    -- a sync thunk handed to ``run_in_executor`` *should* block, and a
    nested coroutine gets its own sweep from the outer walk.
    """
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class BlockingCallInCoroutineRule(Rule):
    """ASY001: a blocking call inside an event-loop coroutine freezes
    every connected client for its duration.  ``time.sleep``, the
    ``subprocess`` synchronous API, builtin ``open`` and the pathlib
    ``read_text``/``write_text`` family must not run on the loop."""

    id = "ASY001"
    summary = "blocking call inside an event-loop coroutine"
    hint = (
        "use the asyncio-native API (asyncio.sleep, stream readers) or "
        "off-load the blocking work with loop.run_in_executor(None, fn, ...)"
    )

    def check(self, mod: ModuleUnderLint) -> Iterator[LintFinding]:
        if not mod.in_packages(ASYNC_PACKAGES):
            return
        aliases = _import_aliases(mod.tree)
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for call in _coroutine_calls(node):
                func = call.func
                if isinstance(func, ast.Name) and func.id == "open":
                    yield self.finding(
                        mod,
                        call.lineno,
                        call.col_offset,
                        f"builtin open() inside coroutine {node.name!r} "
                        f"does synchronous file I/O on the event loop",
                    )
                    continue
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _BLOCKING_METHODS
                    and _resolve(aliases, func) is None
                ):
                    yield self.finding(
                        mod,
                        call.lineno,
                        call.col_offset,
                        f".{func.attr}() inside coroutine {node.name!r} "
                        f"does synchronous file I/O on the event loop",
                    )
                    continue
                origin = _resolve(aliases, func)
                if origin in _BLOCKING_CALLS:
                    yield self.finding(
                        mod,
                        call.lineno,
                        call.col_offset,
                        f"blocking call {origin}() inside coroutine "
                        f"{node.name!r} stalls every connected client",
                    )


#: spawning functions whose returned task must not be discarded
_SPAWN_CALLS = frozenset({"asyncio.create_task", "asyncio.ensure_future"})

#: attribute spellings of the same spawns on an event-loop object
#: (``loop.create_task(...)``); TaskGroup.create_task is exempt because
#: the group itself retains the task, so only loop-named receivers count.
_SPAWN_METHODS = frozenset({"create_task", "ensure_future"})


def _asyncio_aliases(tree: ast.Module) -> dict[str, str]:
    """Local-name -> dotted-origin map for the asyncio module."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "asyncio":
                    aliases[alias.asname or "asyncio"] = (
                        alias.name if alias.asname else "asyncio"
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "asyncio":
                for alias in node.names:
                    aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
    return aliases


def _is_fire_and_forget_spawn(call: ast.Call, aliases: dict[str, str]) -> bool:
    """Does this call spawn a task (so discarding its result loses it)?"""
    origin = _resolve(aliases, call.func)
    if origin in _SPAWN_CALLS:
        return True
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _SPAWN_METHODS
        and isinstance(func.value, ast.Name)
        and (func.value.id == "loop" or func.value.id.endswith("_loop"))
    ):
        return True
    return False


@register
class FireAndForgetTaskRule(Rule):
    """ASY002: a task spawned without retaining its handle can be
    garbage-collected mid-flight, and its exceptions are silently
    swallowed -- exactly the failures a robustness layer must surface.
    Assign the task, await it, or register it in a tracked set with a
    done-callback."""

    id = "ASY002"
    summary = "fire-and-forget asyncio task (spawned handle discarded)"
    hint = (
        "retain the task: assign it (and cancel/await it on teardown), "
        "await it, or add it to a tracked set with a done-callback"
    )

    def check(self, mod: ModuleUnderLint) -> Iterator[LintFinding]:
        if not mod.in_packages(ASYNC_PACKAGES):
            return
        aliases = _asyncio_aliases(mod.tree)
        for node in ast.walk(mod.tree):
            # A spawn as a bare expression statement: the only reference
            # to the new task is dropped on the spot.
            discarded: ast.Call | None = None
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                discarded = node.value
            elif (
                # `_ = create_task(...)` discards just as surely.
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and all(
                    isinstance(t, ast.Name) and t.id == "_" for t in node.targets
                )
            ):
                discarded = node.value
            if discarded is None or not _is_fire_and_forget_spawn(
                discarded, aliases
            ):
                continue
            yield self.finding(
                mod,
                discarded.lineno,
                discarded.col_offset,
                "task spawned and immediately discarded: it may be "
                "garbage-collected mid-flight and its exceptions are "
                "never observed",
            )


# --------------------------------------------------------------------------
# ASY004: read-modify-write of shared state straddling an await
# --------------------------------------------------------------------------

#: bare names treated as shared mutable state inside serve coroutines
_SHARED_ROOTS = frozenset({"state", "session", "server"})


def _shared_key(node: ast.expr) -> str | None:
    """Canonical key for a shared-state location, or ``None``.

    ``self.metrics["served"]`` -> ``self.metrics[served]``;
    ``state.sessions[sid]`` -> ``state.sessions[sid]``.  Dynamic
    subscripts keep a simple variable name when they have one so two
    sites indexing by the same local compare equal.
    """
    parts: list[str] = []
    cur = node
    while True:
        if isinstance(cur, ast.Attribute):
            parts.append(f".{cur.attr}")
            cur = cur.value
        elif isinstance(cur, ast.Subscript):
            sl = cur.slice
            if isinstance(sl, ast.Constant):
                parts.append(f"[{sl.value!r}]")
            elif isinstance(sl, ast.Name):
                parts.append(f"[{sl.id}]")
            else:
                parts.append("[<?>]")
            cur = cur.value
        elif isinstance(cur, ast.Name):
            if cur.id == "self" or cur.id in _SHARED_ROOTS:
                if not parts:
                    return None  # a bare root is not a location
                return cur.id + "".join(reversed(parts))
            return None
        else:
            return None


def _shared_reads(node: ast.expr) -> Iterator[str]:
    """Canonical keys of the *maximal* shared locations read in ``node``.

    Only the outermost chain counts (``state.counters[key]``, not its
    ``state.counters`` prefix), so a parked read matches the write to
    the same full location.  Subscript indices are still descended into:
    they may read shared state of their own.
    """
    stack: list[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        if isinstance(cur, (ast.Attribute, ast.Subscript)):
            key = _shared_key(cur)
            if key is not None:
                yield key
                if isinstance(cur, ast.Subscript):
                    stack.append(cur.slice)
                continue
        stack.extend(ast.iter_child_nodes(cur))


def _contains_await(node: ast.AST) -> bool:
    """Does this expression await, on its own stack (no nested scopes)?"""
    stack: list[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(cur, ast.Await):
            return True
        stack.extend(ast.iter_child_nodes(cur))
    return False


def _count_awaits(node: ast.AST) -> int:
    count = 0
    stack: list[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(cur, ast.Await):
            count += 1
        stack.extend(ast.iter_child_nodes(cur))
    return count


def _looks_like_lock(item: ast.withitem) -> bool:
    """Is this ``async with`` item plausibly an asyncio.Lock acquire?"""
    return "lock" in ast.unparse(item.context_expr).lower()


class _SharedRead:
    """A shared value parked in a local: where and under which locks."""

    __slots__ = ("key", "awaits", "locks")

    def __init__(self, key: str, awaits: int, locks: frozenset[int]) -> None:
        self.key = key
        self.awaits = awaits
        self.locks = locks


class _CoroutineRaceScan:
    """Linear scan of one coroutine body for await-straddling RMW.

    The scan walks statements in source order, counting awaits on the
    coroutine's own stack and tracking which lock-looking ``async
    with`` blocks are active.  Two shapes are flagged:

    1. a single statement that both reads and writes the same shared
       location with an ``await`` in between (``state.n += await f()``,
       ``self.x = combine(self.x, await g())``);
    2. a shared read parked in a local (``cur = state.hits[k]``), an
       ``await`` later, then a write to the same location computed from
       that local (``state.hits[k] = cur + 1``).

    Both are accepted when a common lock-looking ``async with`` spans
    the read and the write: the lock serializes the whole RMW.
    """

    def __init__(self) -> None:
        self.awaits = 0
        self.locks: list[int] = []
        self._next_lock = 0
        self.reads: dict[str, _SharedRead] = {}
        self.races: list[tuple[int, int, str, str]] = []  # line, col, key, why

    def scan(self, fn: ast.AsyncFunctionDef) -> None:
        self._stmts(fn.body)

    # -- statement walk ------------------------------------------------------

    def _stmts(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # nested scope: separate stack, separate sweep
        if isinstance(stmt, ast.AsyncWith):
            for item in stmt.items:
                self.awaits += _count_awaits(item.context_expr)
            lock_ids = []
            for item in stmt.items:
                if _looks_like_lock(item):
                    self._next_lock += 1
                    lock_ids.append(self._next_lock)
            self.locks.extend(lock_ids)
            # Entering an async with suspends, but a lock acquire
            # serializes rather than races: only count the suspension
            # for non-lock context managers.
            if not lock_ids:
                self.awaits += 1
            self._stmts(stmt.body)
            del self.locks[len(self.locks) - len(lock_ids) :]
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self.awaits += _count_awaits(item.context_expr)
            self._stmts(stmt.body)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.awaits += _count_awaits(stmt.iter)
            if isinstance(stmt, ast.AsyncFor):
                self.awaits += 1  # each iteration suspends
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self.awaits += _count_awaits(stmt.test)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
            return
        if isinstance(stmt, ast.If):
            self.awaits += _count_awaits(stmt.test)
            self._stmts(stmt.body)
            self._stmts(stmt.orelse)
            return
        if isinstance(stmt, ast.Try):
            self._stmts(stmt.body)
            for handler in stmt.handlers:
                self._stmts(handler.body)
            self._stmts(stmt.orelse)
            self._stmts(stmt.finalbody)
            return
        if isinstance(stmt, ast.AugAssign):
            self._aug_assign(stmt)
            return
        if isinstance(stmt, ast.Assign):
            self._assign(stmt)
            return
        for child in ast.iter_child_nodes(stmt):
            self.awaits += _count_awaits(child)

    # -- the two race shapes -------------------------------------------------

    def _locked(self) -> frozenset[int]:
        return frozenset(self.locks)

    def _aug_assign(self, stmt: ast.AugAssign) -> None:
        key = _shared_key(stmt.target)
        had_await = _contains_await(stmt.value)
        self.awaits += _count_awaits(stmt.value)
        if key is None:
            return
        if had_await and not self.locks:
            self.races.append(
                (
                    stmt.lineno,
                    stmt.col_offset,
                    key,
                    "the augmented assignment reads it, then awaits, "
                    "then writes it back",
                )
            )

    def _assign(self, stmt: ast.Assign) -> None:
        rhs_keys = set(_shared_reads(stmt.value))
        had_await = _contains_await(stmt.value)
        rhs_names = {
            n.id for n in ast.walk(stmt.value) if isinstance(n, ast.Name)
        }
        self.awaits += _count_awaits(stmt.value)
        for target in stmt.targets:
            key = _shared_key(target)
            if key is None:
                continue
            if had_await and key in rhs_keys and not self.locks:
                self.races.append(
                    (
                        stmt.lineno,
                        stmt.col_offset,
                        key,
                        "the right-hand side reads it and awaits before "
                        "the write lands",
                    )
                )
                continue
            for name in sorted(rhs_names):
                read = self.reads.get(name)
                if read is None or read.key != key:
                    continue
                if read.awaits >= self.awaits:
                    continue  # no suspension between read and write
                if read.locks & self._locked():
                    continue  # a common lock spans the whole RMW
                self.races.append(
                    (
                        stmt.lineno,
                        stmt.col_offset,
                        key,
                        f"it was read into {name!r} before an await; "
                        f"concurrent updates between the read and this "
                        f"write are lost",
                    )
                )
                break
        # Park shared reads bound to simple locals for the write check.
        if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
            local = stmt.targets[0].id
            keys = sorted(rhs_keys)
            if keys:
                self.reads[local] = _SharedRead(
                    keys[0], self.awaits, self._locked()
                )
            else:
                self.reads.pop(local, None)


@register
class AwaitBoundaryRaceRule(Rule):
    """ASY004: a coroutine reads shared state, suspends at an
    ``await``, then writes a value computed from the stale read.  Every
    other coroutine the loop ran in between had its updates silently
    overwritten.  Hold the matching ``asyncio.Lock`` across the whole
    read-modify-write instead."""

    id = "ASY004"
    summary = "read-modify-write of shared state straddles an await"
    severity = Severity.WARNING
    hint = (
        "hold the matching asyncio.Lock across the whole read-modify-"
        "write (async with self._lock: ...), or re-read the state after "
        "the await"
    )

    def check(self, mod: ModuleUnderLint) -> Iterator[LintFinding]:
        if not mod.in_packages(ASYNC_PACKAGES):
            return
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            scan = _CoroutineRaceScan()
            scan.scan(node)
            for line, col, key, why in scan.races:
                yield self.finding(
                    mod,
                    line,
                    col,
                    f"coroutine {node.name!r} writes {key} after an "
                    f"await boundary: {why}",
                )
