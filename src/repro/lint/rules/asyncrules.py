"""Async-safety rules (ASY001).

The query service (:mod:`repro.serve`) runs every connected client on
one event loop: a single blocking call inside a coroutine stalls *all*
of them at once, which no test exercising one connection will notice.
ASY001 pins the invariant statically -- coroutines in the serve package
must off-load blocking work (``loop.run_in_executor``) or use the
asyncio-native equivalent (``asyncio.sleep``, stream APIs).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleUnderLint
from ..findings import LintFinding
from ..registry import Rule, register

#: packages whose coroutines must never block the event loop
ASYNC_PACKAGES: tuple[str, ...] = ("repro.serve",)

#: module roots tracked for alias-aware call resolution
_TRACKED_ROOTS = frozenset({"time", "subprocess", "requests", "urllib"})

#: dotted origins that block the calling thread
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "urllib.request.urlopen",
    }
)

#: method names that do synchronous file I/O (the pathlib idiom)
_BLOCKING_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local-name -> dotted-origin map for the tracked modules."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _TRACKED_ROOTS:
                    aliases[alias.asname or root] = (
                        alias.name if alias.asname else root
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] in _TRACKED_ROOTS:
                for alias in node.names:
                    aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
    return aliases


def _resolve(aliases: dict[str, str], node: ast.expr) -> str | None:
    """Dotted origin of an attribute chain, via the import alias map."""
    parts: list[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return None
    base = aliases.get(cur.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def _coroutine_calls(fn: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Calls lexically on this coroutine's own stack.

    Nested ``def``/``async def``/``lambda`` bodies are separate scopes
    -- a sync thunk handed to ``run_in_executor`` *should* block, and a
    nested coroutine gets its own sweep from the outer walk.
    """
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class BlockingCallInCoroutineRule(Rule):
    """ASY001: a blocking call inside an event-loop coroutine freezes
    every connected client for its duration.  ``time.sleep``, the
    ``subprocess`` synchronous API, builtin ``open`` and the pathlib
    ``read_text``/``write_text`` family must not run on the loop."""

    id = "ASY001"
    summary = "blocking call inside an event-loop coroutine"
    hint = (
        "use the asyncio-native API (asyncio.sleep, stream readers) or "
        "off-load the blocking work with loop.run_in_executor(None, fn, ...)"
    )

    def check(self, mod: ModuleUnderLint) -> Iterator[LintFinding]:
        if not mod.in_packages(ASYNC_PACKAGES):
            return
        aliases = _import_aliases(mod.tree)
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for call in _coroutine_calls(node):
                func = call.func
                if isinstance(func, ast.Name) and func.id == "open":
                    yield self.finding(
                        mod,
                        call.lineno,
                        call.col_offset,
                        f"builtin open() inside coroutine {node.name!r} "
                        f"does synchronous file I/O on the event loop",
                    )
                    continue
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _BLOCKING_METHODS
                    and _resolve(aliases, func) is None
                ):
                    yield self.finding(
                        mod,
                        call.lineno,
                        call.col_offset,
                        f".{func.attr}() inside coroutine {node.name!r} "
                        f"does synchronous file I/O on the event loop",
                    )
                    continue
                origin = _resolve(aliases, func)
                if origin in _BLOCKING_CALLS:
                    yield self.finding(
                        mod,
                        call.lineno,
                        call.col_offset,
                        f"blocking call {origin}() inside coroutine "
                        f"{node.name!r} stalls every connected client",
                    )
