"""Model-invariant rules (INV001–INV004).

``Run``/``History``/``System`` are value objects: the epistemic kernel
interns histories, caches equivalence-class tables, and keys bitsets by
point numbering, all on the assumption that a constructed model object
never changes.  A post-construction write invalidates those caches
without invalidating the answers already derived from them.  The
columnar arena buffers extend the same contract across process
boundaries: their bytes are shared (or re-materialised bit-identically)
between driver and pool workers, so a write outside ``repro.columnar``
silently forks the two views.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleUnderLint
from ..findings import LintFinding
from ..registry import Rule, register

#: packages whose private attributes are construction-only
_MODEL_PACKAGES: tuple[str, ...] = ("repro.model", "repro.knowledge")

#: kernel-internal tables that only the kernel modules may touch
KERNEL_INTERNAL_ATTRS = frozenset(
    {
        "_classes",
        "_class_bits",
        "_interner",
        "_table",
        "_run_pos",
        "_run_value_pos",
        "_prefixes",
        "_timelines",
        "_foreign_ids",
        "_foreign_refs",
    }
)

#: modules allowed to build/fill the kernel tables
KERNEL_MODULES = frozenset(
    {
        "repro.model.system",
        "repro.model.history",
        "repro.model.run",
        "repro.knowledge.semantics",
        "repro.knowledge.group",
    }
)

#: columnar arena / kernel column buffers — immutable outside repro.columnar
ARENA_BUFFER_ATTRS = frozenset(
    {
        "run_durations",
        "tl_offsets",
        "tl_times",
        "tl_events",
        "crash_mask_rows",
        "point_class_rows",
        "class_points_csr",
        "class_offsets_csr",
        "class_sizes",
        "known_masks",
    }
)

#: the only package allowed to fill or rebind arena buffers
_ARENA_PACKAGES: tuple[str, ...] = ("repro.columnar",)

#: methods in which object.__setattr__ is construction, not mutation
_CONSTRUCTION_METHODS = frozenset(
    {"__init__", "__new__", "__post_init__", "__setstate__", "__reduce__"}
)


def _attr_root(node: ast.expr) -> ast.expr:
    cur = node
    while isinstance(cur, (ast.Attribute, ast.Subscript)):
        cur = cur.value
    return cur


def _root_is_self(node: ast.expr) -> bool:
    root = _attr_root(node)
    return isinstance(root, ast.Name) and root.id in {"self", "cls"}


def _new_bound_names(tree: ast.Module) -> set[str]:
    """Names assigned from ``SomeClass.__new__(...)`` anywhere in the file.

    Persistent structures (History) allocate with ``__new__`` and fill
    private slots before the object escapes; those writes are
    construction, not mutation.
    """
    names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "__new__"
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _spine_attributes(target: ast.expr) -> Iterator[ast.Attribute]:
    """Attributes on the *assignment spine* of a target.

    For ``a._x[k]._y = v`` yields ``._y`` then ``._x`` but never the
    attribute reads inside subscript indices (those are loads, e.g.
    ``d[obj._key] = v`` does not write ``._key``).
    """
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _spine_attributes(elt)
        return
    if isinstance(target, ast.Starred):
        yield from _spine_attributes(target.value)
        return
    cur: ast.expr = target
    while isinstance(cur, (ast.Attribute, ast.Subscript)):
        if isinstance(cur, ast.Attribute):
            yield cur
        cur = cur.value


def _store_attributes(stmt: ast.stmt) -> Iterator[ast.Attribute]:
    """Attribute nodes written to by an assignment statement."""
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = list(stmt.targets)
    for target in targets:
        yield from _spine_attributes(target)


@register
class ForeignPrivateWriteRule(Rule):
    """INV001: writing another object's underscore attribute mutates it
    after construction, bypassing both ``frozen=True`` conventions and
    the kernel's cache-validity assumptions."""

    id = "INV001"
    summary = "write to another object's private attribute"
    hint = (
        "construct a new object instead of mutating; construction-time "
        "slot fills belong next to the __new__ call in the owning class"
    )

    def check(self, mod: ModuleUnderLint) -> Iterator[LintFinding]:
        if not mod.in_packages(_MODEL_PACKAGES):
            return
        new_bound = _new_bound_names(mod.tree)
        for node in ast.walk(mod.tree):
            if not isinstance(
                node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)
            ):
                continue
            for attr in _store_attributes(node):
                if not attr.attr.startswith("_") or attr.attr.startswith("__"):
                    continue
                if _root_is_self(attr):
                    continue
                root = _attr_root(attr)
                if isinstance(root, ast.Name) and root.id in new_bound:
                    continue  # filling slots on a __new__-allocated object
                yield self.finding(
                    mod,
                    attr.lineno,
                    attr.col_offset,
                    f"post-construction write to foreign private "
                    f"attribute .{attr.attr}",
                )


@register
class KernelTableWriteRule(Rule):
    """INV002: the interned-history and equivalence-class tables are
    owned by the kernel modules; any outside write desynchronises
    interning (pointer-equality fast paths) from the class bitsets."""

    id = "INV002"
    summary = "write to a kernel-internal table outside the kernel"
    hint = (
        "use the public System/ModelChecker API (restrict/union/Knows); "
        "kernel tables are rebuilt, never edited"
    )

    def check(self, mod: ModuleUnderLint) -> Iterator[LintFinding]:
        if mod.module in KERNEL_MODULES:
            return
        for node in ast.walk(mod.tree):
            if not isinstance(
                node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)
            ):
                continue
            for attr in _store_attributes(node):
                if attr.attr in KERNEL_INTERNAL_ATTRS and not _root_is_self(attr):
                    yield self.finding(
                        mod,
                        attr.lineno,
                        attr.col_offset,
                        f"write to kernel-internal table .{attr.attr} "
                        f"outside {', '.join(sorted(KERNEL_MODULES)[:1])}...",
                    )


@register
class ArenaBufferWriteRule(Rule):
    """INV004: arena buffers (``RunArena`` columns and the columnar
    kernel's class tables) are frozen after construction — workers and
    the driver share their bytes, and cache entries re-materialise them
    bit-identically.  A write outside ``repro.columnar`` forks the
    driver's view from the workers' without either side noticing."""

    id = "INV004"
    summary = "write to an arena buffer outside repro.columnar"
    hint = (
        "arena buffers are immutable; re-encode with "
        "repro.columnar.encode_runs instead of editing columns in place"
    )

    def check(self, mod: ModuleUnderLint) -> Iterator[LintFinding]:
        if mod.in_packages(_ARENA_PACKAGES):
            return
        for node in ast.walk(mod.tree):
            if not isinstance(
                node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)
            ):
                continue
            for attr in _store_attributes(node):
                if attr.attr not in ARENA_BUFFER_ATTRS:
                    continue
                yield self.finding(
                    mod,
                    attr.lineno,
                    attr.col_offset,
                    f"write to arena buffer .{attr.attr} outside "
                    "repro.columnar",
                )


@register
class SetattrEscapeRule(Rule):
    """INV003: ``object.__setattr__`` outside a constructor is the
    canonical way to mutate a frozen dataclass — exactly what frozen
    was meant to prevent.  Memoisation caches that genuinely need it
    must carry an audited suppression."""

    id = "INV003"
    summary = "object.__setattr__ outside construction"
    hint = (
        "mutate only in __init__/__post_init__/__setstate__; for "
        "memoisation on frozen objects, document the cache write with "
        "a lint-ok suppression"
    )

    def check(self, mod: ModuleUnderLint) -> Iterator[LintFinding]:
        functions = [
            (node.lineno, node.end_lineno or node.lineno, node.name)
            for node in ast.walk(mod.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in {"__setattr__", "__delattr__"}
                and isinstance(func.value, ast.Name)
                and func.value.id == "object"
            ):
                continue
            enclosing = [
                (last - first, name)
                for first, last, name in functions
                if first <= node.lineno <= last
            ]
            if enclosing and min(enclosing)[1] in _CONSTRUCTION_METHODS:
                continue
            where = min(enclosing)[1] if enclosing else "module scope"
            yield self.finding(
                mod,
                node.lineno,
                node.col_offset,
                f"object.{func.attr} in {where!r} mutates a frozen "
                "object after construction",
            )
