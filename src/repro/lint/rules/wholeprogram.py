"""Whole-program rules (ASY003, DET007, POOL004).

These are the transitive siblings of the single-file rule families:
ASY001 sees ``time.sleep`` *inside* a serve coroutine, ASY003 sees the
coroutine calling a helper (in any linted module) that reaches
``time.sleep`` two hops down.  All three run over the phase-2
:class:`~repro.lint.project.ProjectIndex` + effect fixpoint
(:mod:`repro.lint.effects`), and all three land at WARNING severity:
resolution is best-effort, so new findings should gate CI only after a
baseline review (the ``--baseline`` workflow in the CLI).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..findings import LintFinding, Severity
from ..project import ProjectIndex
from ..registry import ProjectRule, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..effects import EffectAnalysis

#: packages whose coroutines must never block the event loop (mirrors
#: ``rules.asyncrules.ASYNC_PACKAGES``)
_ASYNC_PACKAGES: tuple[str, ...] = ("repro.serve",)

#: packages whose entire contents must be deterministic (mirrors
#: ``rules.determinism.DET_PACKAGES``)
_DET_PACKAGES: tuple[str, ...] = (
    "repro.core",
    "repro.sim",
    "repro.model",
    "repro.knowledge",
    "repro.explore",
    "repro.detectors",
    "repro.workloads",
)

_TAINT_EFFECTS = ("entropy", "wall-clock")


def _in_packages(module: str | None, packages: tuple[str, ...]) -> bool:
    if module is None:
        return False
    return any(
        module == pkg or module.startswith(pkg + ".") for pkg in packages
    )


@register
class TransitiveBlockingRule(ProjectRule):
    """ASY003: a serve coroutine reaches a blocking call *through
    helpers* — invisible to ASY001's single-file sweep, identical in
    damage (the whole event loop stalls).  Executor-shipped thunks cut
    the propagation: work passed to ``run_in_executor``/``to_thread``
    blocks a worker thread, never the loop."""

    id = "ASY003"
    summary = "coroutine transitively reaches a blocking call"
    severity = Severity.WARNING
    hint = (
        "off-load the blocking helper with loop.run_in_executor(None, fn, ...)"
        " or make the whole chain async; the chain in the message names "
        "every hop down to the blocking site"
    )

    def check_project(
        self, project: ProjectIndex, effects: "EffectAnalysis"
    ) -> Iterator[LintFinding]:
        for edge in effects.graph.edges:
            summary = project.function_files.get(edge.caller)
            if summary is None:
                module_key = edge.caller.partition("::")[0]
                summary = project.modules.get(module_key)
            if summary is None or not _in_packages(summary.module, _ASYNC_PACKAGES):
                continue
            caller_decl = project.functions.get(edge.caller)
            if caller_decl is None or not caller_decl.is_async:
                continue
            if not effects.has_effect(edge.callee, "blocking"):
                continue
            chain = effects.describe_chain(edge.callee, "blocking")
            yield self.finding_at(
                edge.file,
                edge.site.line,
                edge.site.col,
                f"coroutine {caller_decl.qualname!r} transitively blocks "
                f"the event loop via {_short(edge.callee)} -> {chain}",
            )


@register
class TransitiveTaintRule(ProjectRule):
    """DET007: entropy or wall-clock taint flows through helper
    functions into the deterministic core (or a Protocol
    implementation) — the helper may live in an exempt driver-side
    module, so DET001–DET003 never see it, but its ambient state still
    reaches run content through the call."""

    id = "DET007"
    summary = "helper call leaks entropy/wall-clock into deterministic code"
    severity = Severity.WARNING
    hint = (
        "thread a seeded random.Random or the simulated tick through the "
        "call chain instead; the chain in the message names the ambient "
        "source the helper reaches"
    )

    def check_project(
        self, project: ProjectIndex, effects: "EffectAnalysis"
    ) -> Iterator[LintFinding]:
        for edge in effects.graph.edges:
            caller_decl = project.functions.get(edge.caller)
            summary = project.function_files.get(edge.caller)
            if summary is None:
                module_key = edge.caller.partition("::")[0]
                summary = project.modules.get(module_key)
            if summary is None:
                continue
            det_scope = _in_packages(summary.module, _DET_PACKAGES) or (
                caller_decl is not None and caller_decl.protocol_scope
            )
            if not det_scope:
                continue
            for effect in _TAINT_EFFECTS:
                if not effects.has_effect(edge.callee, effect):
                    continue
                chain = effects.describe_chain(edge.callee, effect)
                yield self.finding_at(
                    edge.file,
                    edge.site.line,
                    edge.site.col,
                    f"deterministic code calls a helper carrying "
                    f"{effect} taint via {_short(edge.callee)} -> {chain}",
                )


@register
class TransitiveUnpicklableRule(ProjectRule):
    """POOL004: a value placed into a Run/Ensemble/Explore spec (or a
    protocol factory) comes from a function that transitively returns
    an unpicklable object — a lambda, a local-class instance, an open
    handle, or a lock.  The ``PicklingError`` only fires when the pool
    dispatches the spec, far from this construction site.  Bare
    references to ``<locals>``-nested functions are flagged too: pickle
    resolves callables by qualified module path and cannot reach them."""

    id = "POOL004"
    summary = "spec argument transitively captures an unpicklable value"
    severity = Severity.WARNING
    hint = (
        "build spec contents from module-level functions and plain data; "
        "locks, handles, lambdas, and local classes cannot cross the "
        "process boundary"
    )

    def check_project(
        self, project: ProjectIndex, effects: "EffectAnalysis"
    ) -> Iterator[LintFinding]:
        graph = effects.graph
        for summary in project.summaries:
            for placement in summary.placements:
                target = graph.resolve(summary, placement.caller, placement.ref)
                if target is None:
                    continue
                if placement.is_call:
                    if not effects.has_effect(target, "unpicklable"):
                        continue
                    chain = effects.describe_chain(target, "unpicklable")
                    yield self.finding_at(
                        summary.display_path,
                        placement.line,
                        placement.col,
                        f"argument to {placement.factory}() comes from "
                        f"{_short(target)}, which reaches: {chain}",
                    )
                else:
                    decl = project.functions.get(target)
                    if decl is None or "<locals>" not in decl.qualname:
                        continue
                    yield self.finding_at(
                        summary.display_path,
                        placement.line,
                        placement.col,
                        f"argument to {placement.factory}() references "
                        f"nested function {_short(target)!r}, which cannot "
                        f"pickle for ProcessPoolBackend",
                    )


def _short(gqn: str) -> str:
    module, _, qual = gqn.partition("::")
    return qual or module
