"""Pool-safety rules (POOL001–POOL003).

``ProcessPoolBackend`` pickles every run spec to worker processes and
pickles results back.  Lambdas, locally-defined classes, and open
handles do not pickle; module-level mutable state pickles but then
*diverges* — each worker mutates its own copy, so results depend on
which worker executed which chunk.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleUnderLint
from ..findings import LintFinding, Severity
from ..registry import Rule, register

#: constructors whose arguments travel to pool workers
SPEC_FACTORY_NAMES = frozenset(
    {
        "RunSpec",
        "EnsembleSpec",
        "ExploreSpec",
        "UniformProtocol",
        "ConsensusProtocol",
        "GossipProtocol",
        "FullInformationProtocol",
        "uniform_protocol",
    }
)

#: driver-side packages exempt from module-state checks (the harness
#: registry is an intentional import-time singleton, never pickled)
_POOL_EXEMPT_PACKAGES: tuple[str, ...] = ("repro.harness",)

_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "deque", "defaultdict", "OrderedDict", "Counter"}
)


def _call_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@register
class LambdaInSpecRule(Rule):
    """POOL001: a lambda stored in a spec/protocol-factory field raises
    ``PicklingError`` the moment the ensemble is dispatched to
    ``ProcessPoolBackend`` — and only then, far from the definition."""

    id = "POOL001"
    summary = "lambda passed into a picklable spec/protocol factory"
    hint = (
        "replace the lambda with a module-level function or a frozen "
        "dataclass factory (see UniformProtocol) so the spec pickles"
    )

    def check(self, mod: ModuleUnderLint) -> Iterator[LintFinding]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node.func)
            if name not in SPEC_FACTORY_NAMES:
                continue
            args: list[ast.expr] = list(node.args)
            args.extend(kw.value for kw in node.keywords)
            for arg in args:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Lambda):
                        yield self.finding(
                            mod,
                            sub.lineno,
                            sub.col_offset,
                            f"lambda passed to {name}() will not pickle "
                            "for ProcessPoolBackend",
                        )


@register
class ModuleMutableStateRule(Rule):
    """POOL002: module-level mutable containers (and functions declaring
    ``global``) fork into independent copies in every pool worker;
    writes from worker code paths silently diverge across processes."""

    id = "POOL002"
    summary = "module-level mutable state / global statement"
    hint = (
        "thread state through the spec or return values; if a "
        "driver-side singleton is intended, name it ALL_CAPS or add a "
        "lint-ok suppression stating it is never written from workers"
    )

    def check(self, mod: ModuleUnderLint) -> Iterator[LintFinding]:
        if mod.in_packages(_POOL_EXEMPT_PACKAGES):
            return
        for stmt in mod.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None or not self._is_mutable_literal(value):
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and not target.id.isupper()
                    # dunders (__all__ etc.) are import-time constants
                    and not (
                        target.id.startswith("__") and target.id.endswith("__")
                    )
                ):
                    yield self.finding(
                        mod,
                        stmt.lineno,
                        stmt.col_offset,
                        f"module-level mutable container {target.id!r} "
                        "diverges across pool workers",
                    )
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Global):
                yield self.finding(
                    mod,
                    node.lineno,
                    node.col_offset,
                    f"global statement rebinding {', '.join(node.names)} "
                    "is per-process state",
                )

    @staticmethod
    def _is_mutable_literal(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.Call):
            name = _call_name(node.func)
            return name in _MUTABLE_FACTORIES and not node.args and not node.keywords
        return False


@register
class LocalClassRule(Rule):
    """POOL003: instances of a class defined inside a function cannot be
    pickled (pickle resolves classes by qualified module path), so such
    instances must never end up in run results or specs.  WARNING
    severity: local classes are fine when instances stay local."""

    id = "POOL003"
    summary = "class defined inside a function (unpicklable instances)"
    severity = Severity.WARNING
    hint = (
        "move the class to module level if its instances can reach a "
        "spec, a run result, or the cache"
    )

    def check(self, mod: ModuleUnderLint) -> Iterator[LintFinding]:
        functions = [
            (node.lineno, node.end_lineno or node.lineno, node.name)
            for node in ast.walk(mod.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            enclosing = [
                (last - first, name)
                for first, last, name in functions
                if first <= node.lineno <= last
            ]
            if enclosing:
                _, name = min(enclosing)
                yield self.finding(
                    mod,
                    node.lineno,
                    node.col_offset,
                    f"class {node.name!r} defined inside function "
                    f"{name!r} has unpicklable instances",
                )
