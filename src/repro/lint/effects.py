"""The effect lattice and its fixpoint over the call graph.

Each function node carries a set of *effects* — facts that flow from
callee to caller until nothing changes:

- ``blocking``: the function may block the calling thread (sleep,
  subprocess, synchronous file/socket I/O);
- ``entropy``: it may draw ambient, unreplayable randomness (global
  ``random`` API, ``os.urandom``, ``uuid4``, ``secrets``);
- ``wall-clock``: it may read the wall clock;
- ``unpicklable``: *calling it* may yield a value that cannot pickle
  (it returns a lambda, a local-class instance, an open handle, or a
  lock).

Propagation is effect-specific: ``blocking``/``entropy``/``wall-clock``
flow along every resolved call edge; ``unpicklable`` flows only along
*return-position* calls (``return helper()``), because an unpicklable
value a callee merely used internally never escapes into the caller's
result.  Executor-shipped thunks produce no edge at all (the cut is
structural, see :mod:`repro.lint.callgraph`), so a coroutine that
off-loads blocking work stays clean.

The fixpoint records, per ``(function, effect)``, the deterministic
witness edge it arrived through — lexicographically smallest
``(line, col, callee)`` — so rules can print the full chain down to the
intrinsic source (``handler → _flush → time.sleep``).
"""

from __future__ import annotations

from dataclasses import dataclass

from .callgraph import CallEdge, CallGraph
from .project import IntrinsicEffect, ProjectIndex

#: the effect alphabet, in reporting order
EFFECTS = ("blocking", "entropy", "unpicklable", "wall-clock")


@dataclass(frozen=True)
class EffectWitness:
    """Why a function has an effect: an intrinsic site or a call edge."""

    effect: str
    #: the callee the effect arrived through; None at the intrinsic site
    via: str | None
    #: intrinsic detail ("time.sleep", "returns a lambda") at the root
    detail: str
    file: str
    line: int
    col: int


class EffectAnalysis:
    """Effects of every function in the project, after the fixpoint."""

    def __init__(self, index: ProjectIndex, graph: CallGraph) -> None:
        self.index = index
        self.graph = graph
        #: function gqn -> effect -> witness
        self.effects: dict[str, dict[str, EffectWitness]] = {}
        self._run()

    # -- queries -------------------------------------------------------------

    def effect_of(self, gqn: str, effect: str) -> EffectWitness | None:
        return self.effects.get(gqn, {}).get(effect)

    def has_effect(self, gqn: str, effect: str) -> bool:
        return effect in self.effects.get(gqn, {})

    def chain(self, gqn: str, effect: str, limit: int = 12) -> list[EffectWitness]:
        """The witness path from ``gqn`` down to the intrinsic source."""
        out: list[EffectWitness] = []
        seen: set[str] = set()
        cur: str | None = gqn
        while cur is not None and cur not in seen and len(out) < limit:
            seen.add(cur)
            witness = self.effect_of(cur, effect)
            if witness is None:
                break
            out.append(witness)
            cur = witness.via
        return out

    def describe_chain(self, gqn: str, effect: str) -> str:
        """Human-readable ``a -> b -> time.sleep`` chain description."""
        chain = self.chain(gqn, effect)
        if not chain:
            return ""
        hops = [
            _short_name(witness.via) for witness in chain if witness.via is not None
        ]
        root = chain[-1].detail
        path = " -> ".join([*hops, root]) if hops else root
        return path

    # -- the fixpoint --------------------------------------------------------

    def _run(self) -> None:
        # Seed with intrinsic effects, smallest site first so the
        # recorded witness is deterministic.
        for summary in self.index.summaries:
            key = ProjectIndex.module_key(summary)
            for intrinsic in sorted(
                summary.intrinsics, key=lambda i: (i.line, i.col, i.effect)
            ):
                gqn = self._node(key, intrinsic)
                bucket = self.effects.setdefault(gqn, {})
                if intrinsic.effect not in bucket:
                    bucket[intrinsic.effect] = EffectWitness(
                        effect=intrinsic.effect,
                        via=None,
                        detail=intrinsic.detail,
                        file=summary.display_path,
                        line=intrinsic.line,
                        col=intrinsic.col,
                    )
        # Iterate to fixpoint.  The lattice is finite (4 effects x N
        # functions) and propagation is monotone, so this terminates;
        # processing callers in sorted order with per-caller minimal
        # witness edges keeps the result order-independent.
        changed = True
        while changed:
            changed = False
            for caller in sorted(self.graph.out_edges):
                for edge in self.graph.out_edges[caller]:
                    callee_effects = self.effects.get(edge.callee)
                    if not callee_effects:
                        continue
                    for effect in EFFECTS:
                        if effect not in callee_effects:
                            continue
                        if not _propagates(effect, edge):
                            continue
                        bucket = self.effects.setdefault(caller, {})
                        witness = EffectWitness(
                            effect=effect,
                            via=edge.callee,
                            detail=callee_effects[effect].detail,
                            file=edge.file,
                            line=edge.site.line,
                            col=edge.site.col,
                        )
                        incumbent = bucket.get(effect)
                        if incumbent is None or _better(witness, incumbent):
                            bucket[effect] = witness
                            changed = True
                        elif (
                            incumbent.via == witness.via
                            and incumbent.line == witness.line
                            and incumbent.col == witness.col
                            and incumbent.detail != witness.detail
                        ):
                            # Same witness edge, callee's root detail
                            # refined later in the fixpoint: keep the
                            # chain description coherent.
                            bucket[effect] = witness
                            changed = True

    @staticmethod
    def _node(module_key: str, intrinsic: IntrinsicEffect) -> str:
        if intrinsic.function is None:
            return f"{module_key}::"
        return f"{module_key}::{intrinsic.function}"


def _propagates(effect: str, edge: CallEdge) -> bool:
    if effect == "unpicklable":
        return edge.site.in_return
    return True


def _better(candidate: EffectWitness, incumbent: EffectWitness) -> bool:
    """Deterministic witness preference: intrinsic beats propagated,
    then smallest (line, col, via)."""
    if (incumbent.via is None) != (candidate.via is None):
        return incumbent.via is not None and candidate.via is None
    return (candidate.line, candidate.col, candidate.via or "") < (
        incumbent.line,
        incumbent.col,
        incumbent.via or "",
    )


def _short_name(gqn: str) -> str:
    """``repro.serve.state::ServeState.claim`` -> ``ServeState.claim``."""
    if "::" in gqn:
        module, _, qual = gqn.partition("::")
        return qual or module
    return gqn


def analyze(index: ProjectIndex) -> EffectAnalysis:
    """Build the call graph and run the effect fixpoint."""
    return EffectAnalysis(index, CallGraph(index))
