"""Per-file analysis context shared by every rule.

One :class:`ModuleUnderLint` is built per file: the parsed AST, the
dotted module name (derived from the path, or overridden by a
``# repro: lint-module[...]`` comment so fixture snippets can pretend to
live anywhere), the suppression table parsed from
``# repro: lint-ok[RULE,...]`` comments, and the source ranges of
classes implementing the Protocol interface (determinism rules apply
inside those regardless of the module's package).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

#: suppression comment: ``# repro: lint-ok[DET001]`` or ``[DET001,POOL002]``
_SUPPRESS_RE = re.compile(r"#\s*repro:\s*lint-ok\[([A-Za-z0-9_,\s]*)\]")
#: malformed variant (``lint-ok`` without a bracketed rule list)
_SUPPRESS_LOOSE_RE = re.compile(r"#\s*repro:\s*lint-ok(?!\[)")
#: fixture module override: ``# repro: lint-module[repro.sim.fake]``
_MODULE_RE = re.compile(r"#\s*repro:\s*lint-module\[([A-Za-z0-9_.]+)\]")

#: base-class names marking "this class implements the Protocol
#: interface"; subclass chains in one file are followed transitively.
PROTOCOL_BASE_NAMES = frozenset(
    {"ProtocolProcess", "_CoordinationBase", "DetectorOracle"}
)


@dataclass
class Suppression:
    """One parsed ``lint-ok`` comment."""

    line: int
    rules: frozenset[str]
    used: bool = field(default=False, compare=False)


def module_name_for_path(path: Path) -> str | None:
    """The dotted module name, derived from a ``repro`` package root.

    Walks up the path looking for the top-level ``repro`` directory; a
    file outside any ``repro`` tree (e.g. a test fixture) gets ``None``
    and must rely on a ``lint-module`` override to enter package-scoped
    rules.
    """
    parts = list(path.resolve().parts)
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            dotted = parts[i:-1] + [path.stem]
            if path.stem == "__init__":
                dotted = parts[i:-1]
            return ".".join(dotted)
    return None


class ModuleUnderLint:
    """Everything the rules need to know about one source file."""

    def __init__(self, path: Path, display_path: str, source: str) -> None:
        self.path = path
        self.display_path = display_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.suppressions: dict[int, Suppression] = {}
        self.malformed_suppressions: list[int] = []
        self.module: str | None = module_name_for_path(path)
        self._scan_comments()
        self.protocol_class_ranges = self._find_protocol_classes()

    # -- comments -----------------------------------------------------------

    def _scan_comments(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            comments = [
                (tok.start[0], tok.string)
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        except tokenize.TokenError:  # pragma: no cover - ast.parse catches first
            comments = []
        for lineno, text in comments:
            override = _MODULE_RE.search(text)
            if override:
                self.module = override.group(1)
            match = _SUPPRESS_RE.search(text)
            if match:
                rules = frozenset(
                    part.strip() for part in match.group(1).split(",") if part.strip()
                )
                if not rules:
                    self.malformed_suppressions.append(lineno)
                    continue
                # A comment alone on its line covers the next line; a
                # trailing comment covers its own line.
                stripped = self.lines[lineno - 1].strip() if lineno <= len(self.lines) else ""
                target = lineno + 1 if stripped.startswith("#") else lineno
                self.suppressions[target] = Suppression(target, rules)
            elif _SUPPRESS_LOOSE_RE.search(text):
                self.malformed_suppressions.append(lineno)

    def suppressed(self, rule: str, line: int) -> bool:
        """True (and marks the suppression used) when ``rule`` is waived
        at ``line`` by a ``lint-ok`` comment."""
        entry = self.suppressions.get(line)
        if entry is not None and rule in entry.rules:
            entry.used = True
            return True
        return False

    # -- package / protocol scope -------------------------------------------

    def in_packages(self, packages: tuple[str, ...]) -> bool:
        """Is this module inside any of the dotted package prefixes?"""
        if self.module is None:
            return False
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in packages
        )

    def _find_protocol_classes(self) -> tuple[tuple[int, int], ...]:
        """(first, last) line ranges of Protocol-interface classes."""
        protocol_names = set(PROTOCOL_BASE_NAMES)
        ranges: list[tuple[int, int]] = []
        # Two passes so subclasses of in-file protocol classes count too.
        for _ in range(2):
            for node in ast.walk(self.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                for base in node.bases:
                    name = _base_name(base)
                    if name in protocol_names:
                        protocol_names.add(node.name)
                        span = (node.lineno, node.end_lineno or node.lineno)
                        if span not in ranges:
                            ranges.append(span)
                        break
        return tuple(sorted(ranges))

    def in_protocol_class(self, node: ast.AST) -> bool:
        """Is the node's line inside a Protocol-interface class body?"""
        line = getattr(node, "lineno", None)
        if line is None:
            return False
        return any(first <= line <= last for first, last in self.protocol_class_ranges)


def _base_name(base: ast.expr) -> str | None:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None
