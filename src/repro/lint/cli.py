"""``python -m repro.harness lint`` — the CLI front end.

Exit codes, kept strict so CI can tell failure modes apart:

- **0** — clean (no findings after baseline filtering, no parse errors)
- **1** — findings: the lint ran to completion and found violations
- **2** — usage or internal error: bad flags, unknown rule ids, missing
  paths, unreadable baseline, or an analyzer crash — the run's verdict
  means nothing and CI must not treat it as either clean or dirty
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Sequence

from .baseline import apply_baseline, load_baseline, write_baseline
from .engine import LintReport, lint_paths
from .registry import all_rules, known_rule_ids, select_rules
from .sarif import to_sarif


class UsageError(Exception):
    """A condition that must exit 2, with a message for stderr."""


def _default_paths() -> list[Path]:
    """Prefer ``src/repro`` relative to the CWD; fall back to the
    installed package location so the command works from anywhere."""
    local = Path("src") / "repro"
    if local.is_dir():
        return [local]
    import repro

    pkg_file = repro.__file__
    if pkg_file is None:  # pragma: no cover - namespace-package edge
        raise UsageError("cannot locate the repro package to lint")
    return [Path(pkg_file).parent]


def _make_selector(spec: str) -> Callable[[str], bool]:
    wanted = {part.strip().upper() for part in spec.split(",") if part.strip()}
    valid = ", ".join(sorted(known_rule_ids()))
    if not wanted:
        raise UsageError(
            f"--select got no rule ids; valid rule ids: {valid}"
        )
    unknown = wanted - known_rule_ids()
    if unknown:
        raise UsageError(
            f"unknown rule id(s) in --select: {', '.join(sorted(unknown))}; "
            f"valid rule ids: {valid}"
        )
    return lambda rule_id: rule_id in wanted


def _render_text(report: LintReport, absorbed: int) -> str:
    lines = [finding.render() for finding in report.findings]
    lines.extend(f"parse error: {err}" for err in report.parse_errors)
    counts = report.counts()
    summary = (
        f"{len(report.errors)} error(s), {len(report.warnings)} warning(s) "
        f"in {report.files_scanned} file(s)"
    )
    if counts:
        summary += (
            " [" + ", ".join(f"{rid}:{n}" for rid, n in counts.items()) + "]"
        )
    if absorbed:
        summary += f" ({absorbed} baselined)"
    lines.append(summary)
    return "\n".join(lines)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.harness lint",
        description=(
            "whole-program determinism / async-safety / pool-safety "
            "static analysis for repro protocols and runtime"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULE,...",
        help="only run the named rules (comma-separated ids)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        metavar="DIR",
        help=(
            "incremental analysis cache directory: warm runs re-parse "
            "only files whose content changed"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        metavar="N",
        help="parse worker threads (default: min(8, cpu count))",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        metavar="FILE",
        help=(
            "suppress findings recorded in this baseline file; only new "
            "findings are reported and affect the exit code"
        ),
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=(
            "rewrite the --baseline file with the current findings and "
            "exit 0 (parse errors still exit 1)"
        ),
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print cache statistics to stderr after the run",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors (and 0 on --help); normalise
        # to an int return so callers can compose us
        return exc.code if isinstance(exc.code, int) else 2

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  [{rule.severity.value:7}] {rule.summary}")
        return 0

    try:
        return _run(args)
    except UsageError as exc:
        print(exc, file=sys.stderr)
        return 2
    except Exception as exc:  # internal analyzer failure: never exit 0/1
        print(f"internal error: {exc!r}", file=sys.stderr)
        return 2


def _run(args: argparse.Namespace) -> int:
    selector = _make_selector(args.select) if args.select else None
    if args.update_baseline and args.baseline is None:
        raise UsageError("--update-baseline requires --baseline FILE")
    if args.jobs is not None and args.jobs < 1:
        raise UsageError("--jobs must be a positive integer")
    paths = list(args.paths) or _default_paths()
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        raise UsageError(f"no such path: {', '.join(missing)}")

    report = lint_paths(
        paths, selector, cache_dir=args.cache_dir, jobs=args.jobs
    )
    if args.stats:
        print(
            f"cache: {report.cache_hits} hit(s), "
            f"{report.files_reparsed} file(s) re-parsed",
            file=sys.stderr,
        )

    if args.update_baseline:
        write_baseline(args.baseline, report.findings)
        print(
            f"baseline updated: {len(report.findings)} finding(s) recorded "
            f"in {args.baseline}",
            file=sys.stderr,
        )
        return 1 if report.parse_errors else 0

    absorbed = 0
    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except ValueError as exc:
            raise UsageError(str(exc)) from exc
        fresh, absorbed = apply_baseline(report.findings, baseline)
        report = LintReport(
            findings=fresh,
            files_scanned=report.files_scanned,
            parse_errors=report.parse_errors,
            cache_hits=report.cache_hits,
            files_reparsed=report.files_reparsed,
        )

    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=False))
    elif args.format == "sarif":
        print(
            json.dumps(
                to_sarif(report, select_rules(selector)),
                indent=2,
                sort_keys=False,
            )
        )
    else:
        print(_render_text(report, absorbed))
    return 1 if report.failed else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
