"""``python -m repro.harness lint`` — the CLI front end.

Exit codes: 0 clean, 1 findings (or unparseable files), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Sequence

from .engine import LintReport, lint_paths
from .registry import all_rules, known_rule_ids


def _default_paths() -> list[Path]:
    """Prefer ``src/repro`` relative to the CWD; fall back to the
    installed package location so the command works from anywhere."""
    local = Path("src") / "repro"
    if local.is_dir():
        return [local]
    import repro

    pkg_file = repro.__file__
    if pkg_file is None:  # pragma: no cover - namespace-package edge
        raise SystemExit("cannot locate the repro package to lint")
    return [Path(pkg_file).parent]


def _make_selector(spec: str) -> Callable[[str], bool]:
    wanted = {part.strip().upper() for part in spec.split(",") if part.strip()}
    unknown = wanted - known_rule_ids()
    if unknown:
        raise SystemExit(
            f"unknown rule id(s) in --select: {', '.join(sorted(unknown))} "
            "(see --list-rules)"
        )
    return lambda rule_id: rule_id in wanted


def _render_text(report: LintReport) -> str:
    lines = [finding.render() for finding in report.findings]
    lines.extend(f"parse error: {err}" for err in report.parse_errors)
    counts = report.counts()
    summary = (
        f"{len(report.errors)} error(s), {len(report.warnings)} warning(s) "
        f"in {report.files_scanned} file(s)"
    )
    if counts:
        summary += (
            " [" + ", ".join(f"{rid}:{n}" for rid, n in counts.items()) + "]"
        )
    lines.append(summary)
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.harness lint",
        description=(
            "determinism / pool-safety / model-invariant static analysis "
            "for repro protocols and runtime"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULE,...",
        help="only run the named rules (comma-separated ids)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors (and 0 on --help); normalise
        # to an int return so callers can compose us
        return exc.code if isinstance(exc.code, int) else 2

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  [{rule.severity.value:7}] {rule.summary}")
        return 0

    try:
        selector = _make_selector(args.select) if args.select else None
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2
    paths = list(args.paths) or _default_paths()
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    report = lint_paths(paths, selector)

    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=False))
    else:
        print(_render_text(report))
    return 1 if report.failed else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
