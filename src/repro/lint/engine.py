"""Lint engine: two-phase whole-program analysis with incremental reuse.

Phase 1 parses each file once, runs the per-file rules, and extracts a
:class:`~repro.lint.project.FileSummary`; with a cache directory, files
whose bytes are unchanged skip this phase entirely (their summaries and
findings come from disk), and fresh parses run on a small thread pool.
Phase 2 joins every summary into the
:class:`~repro.lint.project.ProjectIndex`, builds the call graph, runs
the effect fixpoint, and evaluates the whole-program rules — always
recomputed, so an edit to one helper updates transitive findings in
files that were never re-parsed.

The engine is deterministic end to end: files are discovered in sorted
order, findings are sorted by ``(file, line, col, rule)``, and the JSON
form has stable key order — so CI diffs and golden tests are exact, and
a warm run's JSON output is byte-identical to a cold run's.
"""

from __future__ import annotations

import concurrent.futures
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

from .cache import AnalysisCache, file_digest
from .context import ModuleUnderLint
from .effects import analyze
from .findings import LintFinding, Severity
from .project import FileSummary, ProjectIndex, summarize
from .registry import ProjectRule, Rule, select_rules


@dataclass(frozen=True)
class LintReport:
    """The outcome of one lint run.

    ``cache_hits``/``files_reparsed`` are run diagnostics, deliberately
    excluded from :meth:`as_dict`: JSON output must be byte-identical
    between a cold and a warm run over identical sources.
    """

    findings: tuple[LintFinding, ...]
    files_scanned: int
    parse_errors: tuple[str, ...] = field(default=())
    cache_hits: int = 0
    files_reparsed: int = 0

    @property
    def errors(self) -> tuple[LintFinding, ...]:
        return tuple(f for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[LintFinding, ...]:
        return tuple(f for f in self.findings if f.severity is Severity.WARNING)

    @property
    def failed(self) -> bool:
        """Exit-1 condition: any ERROR finding or unparseable file."""
        return bool(self.errors) or bool(self.parse_errors)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule] = out.get(finding.rule, 0) + 1
        return dict(sorted(out.items()))

    def as_dict(self) -> dict[str, object]:
        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "failed": self.failed,
            "counts": self.counts(),
            "parse_errors": list(self.parse_errors),
            "findings": [f.as_dict() for f in self.findings],
        }


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """All ``.py`` files under the given paths, in sorted order."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def _display_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


@dataclass
class _FileResult:
    """Phase-1 outcome for one file, cached or freshly parsed."""

    display: str
    sha256: str
    summary: FileSummary | None
    findings: tuple[LintFinding, ...]
    parse_error: str | None
    from_cache: bool


def _split_rules(
    rules: tuple[Rule, ...]
) -> tuple[tuple[Rule, ...], tuple[ProjectRule, ...]]:
    file_rules = tuple(r for r in rules if not isinstance(r, ProjectRule))
    project_rules = tuple(r for r in rules if isinstance(r, ProjectRule))
    return file_rules, project_rules


def _parse_one(
    path: Path,
    display: str,
    sha256: str,
    source: str,
    file_rules: tuple[Rule, ...],
) -> _FileResult:
    """Parse, run the per-file rules, and summarize one file."""
    try:
        mod = ModuleUnderLint(path, display, source)
    except SyntaxError as exc:
        return _FileResult(display, sha256, None, (), f"{display}: {exc}", False)
    findings: list[LintFinding] = []
    for rule in file_rules:
        for finding in rule.check(mod):
            if not mod.suppressed(finding.rule, finding.line):
                findings.append(finding)
    summary = summarize(mod, sha256, findings)
    return _FileResult(display, sha256, summary, tuple(findings), None, False)


def _default_jobs() -> int:
    return min(8, os.cpu_count() or 1)


def _phase1(
    files: list[Path],
    file_rules: tuple[Rule, ...],
    cache: AnalysisCache | None,
    jobs: int | None,
) -> tuple[list[_FileResult], list[str]]:
    """Per-file results in discovery order, plus I/O errors."""
    io_errors: list[str] = []
    slots: list[_FileResult | None] = []
    fresh: list[tuple[int, Path, str, str, str]] = []  # slot, path, display, sha, src
    for path in files:
        display = _display_path(path)
        try:
            data = path.read_bytes()
            source = data.decode("utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            io_errors.append(f"{display}: {exc}")
            continue
        sha256 = file_digest(data)
        entry = cache.lookup(display, sha256) if cache is not None else None
        if entry is not None:
            findings = entry.summary.findings if entry.summary else ()
            slots.append(
                _FileResult(
                    display, sha256, entry.summary, findings, entry.parse_error, True
                )
            )
            continue
        slots.append(None)
        fresh.append((len(slots) - 1, path, display, sha256, source))
    if fresh:
        workers = jobs if jobs is not None else _default_jobs()
        if workers > 1 and len(fresh) > 1:
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=workers
            ) as pool:
                parsed = list(
                    pool.map(
                        lambda item: _parse_one(
                            item[1], item[2], item[3], item[4], file_rules
                        ),
                        fresh,
                    )
                )
        else:
            parsed = [
                _parse_one(path, display, sha, src, file_rules)
                for _, path, display, sha, src in fresh
            ]
        for (slot, *_), result in zip(fresh, parsed):
            slots[slot] = result
            if cache is not None:
                cache.store(
                    result.display,
                    result.sha256,
                    result.summary,
                    result.parse_error,
                )
    return [slot for slot in slots if slot is not None], io_errors


def _phase2(
    summaries: list[FileSummary], project_rules: tuple[ProjectRule, ...]
) -> list[LintFinding]:
    """Whole-program findings, suppression-filtered via the summaries."""
    if not project_rules or not summaries:
        return []
    index = ProjectIndex.build(summaries)
    effects = analyze(index)
    by_path = {s.display_path: s for s in summaries}
    findings: list[LintFinding] = []
    for rule in project_rules:
        for finding in rule.check_project(index, effects):
            summary = by_path.get(finding.file)
            if summary is not None and summary.suppressed(
                finding.rule, finding.line
            ):
                continue
            findings.append(finding)
    return findings


def lint_file(
    path: Path, rules: tuple[Rule, ...]
) -> tuple[list[LintFinding], str | None]:
    """Lint one file in isolation (single-file project scope).

    Whole-program rules still run — over an index containing just this
    file — which is what the fixture harness exercises.
    """
    display = _display_path(path)
    file_rules, project_rules = _split_rules(rules)
    try:
        data = path.read_bytes()
        source = data.decode("utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [], f"{display}: {exc}"
    result = _parse_one(path, display, file_digest(data), source, file_rules)
    if result.parse_error is not None or result.summary is None:
        return [], result.parse_error
    findings = list(result.findings)
    findings.extend(_phase2([result.summary], project_rules))
    findings.sort(key=lambda f: (f.file, f.line, f.col, f.rule))
    return findings, None


def lint_paths(
    paths: Iterable[Path],
    select: Callable[[str], bool] | None = None,
    cache_dir: Path | None = None,
    jobs: int | None = None,
) -> LintReport:
    """Lint every python file under ``paths`` with the selected rules.

    With ``cache_dir``, unchanged files are served from the incremental
    cache (phase 1 is skipped for them) and the cache is rewritten at
    the end; findings are identical to a cold run by construction.
    """
    rules = select_rules(select)
    file_rules, project_rules = _split_rules(rules)
    cache = (
        AnalysisCache.open(cache_dir, rules) if cache_dir is not None else None
    )
    files = list(iter_python_files(paths))
    results, io_errors = _phase1(files, file_rules, cache, jobs)

    findings: list[LintFinding] = []
    parse_errors: list[str] = list(io_errors)
    summaries: list[FileSummary] = []
    for result in results:
        findings.extend(result.findings)
        if result.parse_error is not None:
            parse_errors.append(result.parse_error)
        if result.summary is not None:
            summaries.append(result.summary)
    findings.extend(_phase2(summaries, project_rules))

    if cache is not None:
        cache.save()

    findings.sort(key=lambda f: (f.file, f.line, f.col, f.rule))
    return LintReport(
        findings=tuple(findings),
        files_scanned=len(files),
        parse_errors=tuple(parse_errors),
        cache_hits=sum(1 for r in results if r.from_cache),
        files_reparsed=sum(1 for r in results if not r.from_cache),
    )
