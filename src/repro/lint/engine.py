"""Lint engine: walk files, run rules, apply suppressions, report.

The engine is deterministic end to end: files are discovered in sorted
order, findings are sorted by ``(file, line, col, rule)``, and the JSON
form has stable key order — so CI diffs and golden tests are exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

from .context import ModuleUnderLint
from .findings import LintFinding, Severity
from .registry import Rule, select_rules


@dataclass(frozen=True)
class LintReport:
    """The outcome of one lint run."""

    findings: tuple[LintFinding, ...]
    files_scanned: int
    parse_errors: tuple[str, ...] = field(default=())

    @property
    def errors(self) -> tuple[LintFinding, ...]:
        return tuple(f for f in self.findings if f.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[LintFinding, ...]:
        return tuple(f for f in self.findings if f.severity is Severity.WARNING)

    @property
    def failed(self) -> bool:
        """Exit-1 condition: any ERROR finding or unparseable file."""
        return bool(self.errors) or bool(self.parse_errors)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for finding in self.findings:
            out[finding.rule] = out.get(finding.rule, 0) + 1
        return dict(sorted(out.items()))

    def as_dict(self) -> dict[str, object]:
        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "failed": self.failed,
            "counts": self.counts(),
            "parse_errors": list(self.parse_errors),
            "findings": [f.as_dict() for f in self.findings],
        }


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """All ``.py`` files under the given paths, in sorted order."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def _display_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_file(
    path: Path, rules: tuple[Rule, ...]
) -> tuple[list[LintFinding], str | None]:
    """Lint one file; returns (findings, parse-error-or-None)."""
    display = _display_path(path)
    try:
        source = path.read_text(encoding="utf-8")
        mod = ModuleUnderLint(path, display, source)
    except (SyntaxError, UnicodeDecodeError, OSError) as exc:
        return [], f"{display}: {exc}"
    findings: list[LintFinding] = []
    for rule in rules:
        for finding in rule.check(mod):
            if not mod.suppressed(finding.rule, finding.line):
                findings.append(finding)
    return findings, None


def lint_paths(
    paths: Iterable[Path],
    select: Callable[[str], bool] | None = None,
) -> LintReport:
    """Lint every python file under ``paths`` with the selected rules."""
    rules = select_rules(select)
    findings: list[LintFinding] = []
    parse_errors: list[str] = []
    files = 0
    for path in iter_python_files(paths):
        files += 1
        file_findings, parse_error = lint_file(path, rules)
        findings.extend(file_findings)
        if parse_error is not None:
            parse_errors.append(parse_error)
    findings.sort(key=lambda f: (f.file, f.line, f.col, f.rule))
    return LintReport(
        findings=tuple(findings),
        files_scanned=files,
        parse_errors=tuple(parse_errors),
    )
