"""Command-line entry point: ``python -m repro [command]``.

Commands:
  experiments [IDs...]  run the reproduction experiments (default: all);
                        supports --list and --backend serial|process[:N]
  list                  list registered experiment ids and summaries
  table1                regenerate Table 1 only
  demo                  execute one UDC run and print its trace
"""

from __future__ import annotations

import sys


def demo() -> int:
    """One UDC run, traced and checked -- built from a declarative RunSpec."""
    from repro import (
        CrashPlan,
        StrongFDUDCProcess,
        StrongOracle,
        make_process_ids,
        single_action,
        udc_holds,
        uniform_protocol,
    )
    from repro.harness.trace import render_run, summarize_run
    from repro.runtime import RunSpec, run_spec

    spec = RunSpec(
        processes=make_process_ids(4),
        protocol=uniform_protocol(StrongFDUDCProcess),
        crash_plan=CrashPlan.of({"p3": 8}),
        workload=single_action("p1", tick=1),
        detector=StrongOracle(),
        seed=42,
    )
    run = run_spec(spec)
    print(summarize_run(run))
    print()
    print(render_run(run, limit=40))
    print()
    verdict = udc_holds(run)
    print(f"UDC: {'holds' if verdict else verdict.witness}")
    return 0


def main(argv: list[str]) -> int:
    """Dispatch the CLI subcommands."""
    if not argv or argv[0] == "experiments":
        from repro.harness.__main__ import main as harness_main

        return harness_main(argv[1:] if argv else [])
    if argv[0] == "list":
        from repro.harness import registry

        print(registry.describe())
        return 0
    if argv[0] == "table1":
        from repro.harness.table1 import build_table1, render_table1

        print(render_table1(build_table1()))
        return 0
    if argv[0] == "demo":
        return demo()
    print(__doc__)
    return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
