"""Workload generators: schedules of action initiations (Section 2.4)."""

from repro.workloads.generators import (
    action_id,
    burst_workload,
    initiator_of,
    post_crash_workload,
    single_action,
    stream_workload,
)

__all__ = [
    "action_id",
    "burst_workload",
    "initiator_of",
    "post_crash_workload",
    "single_action",
    "stream_workload",
]
