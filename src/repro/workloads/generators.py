"""Action-initiation workloads.

Coordination actions live in per-process sets A_p that must be disjoint
(Section 2.4); we realise the paper's suggestion that actions are
"tagged" by their initiator: an action identifier is the pair
``(initiator, name)``.  Only the initiator may init it, and an action is
initiated at most once per run -- both enforced by the run validator.

A workload is a sorted sequence of ``(tick, process, action)`` triples
handed to the executor, which turns each into an ``init`` event at the
first free tick at or after ``tick`` (provided the process is still
alive -- a crashed initiator simply never initiates, which is allowed:
DC1 is then vacuous for that action).
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.model.events import ActionId, ProcessId
from repro.sim.failures import CrashPlan

Workload = list[tuple[int, ProcessId, ActionId]]


def action_id(initiator: ProcessId, name: str) -> ActionId:
    """The canonical action identifier: tagged by its initiator."""
    return (initiator, name)


def initiator_of(action: ActionId) -> ProcessId:
    """The process p with action in A_p."""
    return action[0]


def single_action(initiator: ProcessId, *, tick: int = 0, name: str = "a0") -> Workload:
    """One action initiated by one process: the minimal UDC workload."""
    return [(tick, initiator, action_id(initiator, name))]


def burst_workload(
    processes: Iterable[ProcessId],
    *,
    tick: int = 0,
    actions_per_process: int = 1,
) -> Workload:
    """Every process initiates ``actions_per_process`` actions at once."""
    workload: Workload = []
    for p in processes:
        for i in range(actions_per_process):
            workload.append((tick, p, action_id(p, f"a{i}")))
    workload.sort()
    return workload


def stream_workload(
    processes: Sequence[ProcessId],
    *,
    count: int,
    spacing: int = 6,
    start_tick: int = 0,
    rng: random.Random | None = None,
) -> Workload:
    """``count`` actions spread over time, round-robin (or random) initiators.

    This is the finite stand-in for the theorems' "infinitely many
    actions are initiated": a steady stream that outlives every crash in
    the run.
    """
    workload: Workload = []
    for i in range(count):
        if rng is None:
            p = processes[i % len(processes)]  # round-robin
        else:
            p = rng.choice(processes)
        workload.append((start_tick + i * spacing, p, action_id(p, f"s{i}")))
    return workload


def post_crash_workload(
    processes: Sequence[ProcessId],
    crash_plan: CrashPlan,
    *,
    actions_per_survivor: int = 2,
    spacing: int = 8,
    lead: int = 5,
) -> Workload:
    """Actions initiated by planned-correct processes *after* every crash.

    Theorems 3.6 and 4.3 require that correct processes keep initiating
    actions after failures (that is what forces them to learn about the
    failures).  This generator starts the stream ``lead`` ticks after the
    last planned crash.
    """
    last_crash = max((t for _, t in crash_plan.crashes), default=0)
    survivors = [p for p in processes if p not in crash_plan.faulty]
    workload: Workload = []
    tick = last_crash + lead
    for i in range(actions_per_survivor):
        for p in survivors:
            workload.append((tick, p, action_id(p, f"pc{i}")))
        tick += spacing
    return workload
