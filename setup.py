"""Setup shim for legacy editable installs.

The execution environment has setuptools without the ``wheel`` package,
so PEP 660 editable installs fail; ``pip install -e .`` falls back to
``setup.py develop`` when this file exists and no [build-system] table
forces PEP 517.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
