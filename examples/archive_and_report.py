#!/usr/bin/env python3
"""Archive an ensemble, reload it, re-verify the theorem, emit a report.

Ensembles are the 'datasets' of this reproduction: expensive to
regenerate, cheap to store.  This example builds a Theorem 3.6
ensemble, archives it to JSON, reloads it, re-runs the perfect-detector
verification on the *loaded* copy (knowledge must survive the round
trip bit-for-bit), and writes a small markdown reproduction report.

    python examples/archive_and_report.py
"""

import os
import tempfile

from repro import (
    a5t_ensemble,
    make_process_ids,
    simulate_perfect_detectors,
    uniform_protocol,
)
from repro.core.protocols import StrongFDUDCProcess
from repro.detectors.properties import is_perfect
from repro.detectors.standard import PerfectOracle
from repro.harness.report import generate_report
from repro.model.serialize import load_system, save_system
from repro.workloads.generators import post_crash_workload


def main() -> None:
    processes = make_process_ids(4)
    system = a5t_ensemble(
        processes,
        uniform_protocol(StrongFDUDCProcess),
        t=3,
        workload=lambda plan: post_crash_workload(processes, plan),
        detector=PerfectOracle(),
        seeds=(0, 1),
    )
    print(f"built ensemble: {len(system)} runs")

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "ensemble.json")
        save_system(system, path)
        size_kb = os.path.getsize(path) / 1024
        print(f"archived to {path} ({size_kb:.0f} KiB)")

        loaded = load_system(path)
        assert loaded.runs == system.runs
        print("reloaded: runs identical (histories hash equal)")

        # Theorem 3.6 on the LOADED copy: knowledge is computed from the
        # deserialized histories, so this checks the archive end-to-end.
        rf = simulate_perfect_detectors(loaded)
        verdicts = [bool(is_perfect(r, derived=True)) for r in rf]
        print(
            f"Theorem 3.6 on the archive: {sum(verdicts)}/{len(verdicts)} "
            "runs yield perfect derived detectors"
        )

        report_path = os.path.join(tmp, "report.md")
        with open(report_path, "w") as f:
            f.write(generate_report(["A14", "A15"]))
        print(f"wrote report with {open(report_path).read().count('##')} sections")
        print()
        print(open(report_path).read().splitlines()[4])


if __name__ == "__main__":
    main()
