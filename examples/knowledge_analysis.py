#!/usr/bin/env python3
"""The knowledge-theoretic heart of the paper, step by step.

Builds an ensemble of UDC runs, watches knowledge of a crash spread
through the system, then applies Theorem 3.6's transformation f: the
derived detector that suspects exactly ``{q : K_p crash(q)}`` is
checked to be *perfect*.

    python examples/knowledge_analysis.py
"""

from repro.core.properties import udc_holds
from repro.core.protocols import StrongFDUDCProcess
from repro.core.simulation_theorem import simulate_perfect_detectors, transform_run_f
from repro.detectors.properties import is_perfect
from repro.detectors.standard import PerfectOracle
from repro.knowledge import Crashed, Knows, ModelChecker
from repro.model.context import make_process_ids
from repro.model.run import Point
from repro.sim.ensembles import a5t_ensemble
from repro.sim.process import uniform_protocol
from repro.workloads.generators import post_crash_workload


def main() -> None:
    processes = make_process_ids(4)

    # 1. A system: runs of the Prop 3.1 protocol under every failure
    #    pattern of size <= 3, with actions initiated after each crash
    #    (the theorem's "infinitely many initiations", finitely sampled).
    system = a5t_ensemble(
        processes,
        uniform_protocol(StrongFDUDCProcess),
        t=3,
        workload=lambda plan: post_crash_workload(
            processes, plan, actions_per_survivor=2
        ),
        detector=PerfectOracle(),
        seeds=(0, 1),
    )
    print(f"system: {len(system)} runs over {len(processes)} processes")
    print(f"UDC holds in every run: {all(bool(udc_holds(r)) for r in system)}")
    print()

    # 2. Watch knowledge spread.  Pick a run where p3 crashes and ask,
    #    at each time, which processes know it.
    run = next(r for r in system if r.faulty() == frozenset({"p3"}))
    checker = ModelChecker(system)
    crash_tick = run.crash_time("p3")
    print(f"in one run, p3 crashes at time {crash_tick}; K_p(crash(p3)) over time:")
    observers = [p for p in processes if p != "p3"]
    learned: dict[str, int] = {}
    for m in range(run.duration + 1):
        for p in observers:
            if p not in learned and checker.holds(Knows(p, Crashed("p3")), Point(run, m)):
                learned[p] = m
    for p in observers:
        when = learned.get(p)
        print(f"  {p}: {'never learns' if when is None else f'knows from time {when}'}")
    print()
    print("(knowledge is veridical: nobody 'knows' before the crash itself;")
    print(f" earliest knowledge at {min(learned.values())} >= crash at {crash_tick})")
    print()

    # 3. Theorem 3.6: the run transformation f plants a derived report
    #    suspect'_p({q : K_p crash(q)}) at every odd step.  The result
    #    is a PERFECT failure detector -- accuracy from veridicality,
    #    completeness from UDC + continued initiations.
    f_run = transform_run_f(run, system)
    derived_report_count = sum(
        1
        for p in processes
        for e in f_run.events(p)
        if getattr(e, "derived", False)
    )
    print(
        f"f(run): duration {run.duration} -> {f_run.duration}, "
        f"{derived_report_count} derived reports"
    )
    rf = simulate_perfect_detectors(system)
    perfect = sum(1 for r in rf if is_perfect(r, derived=True))
    print(f"R^f perfect-detector verdicts: {perfect}/{len(rf)} runs")
    print()
    print(
        "A UDC-attaining system, under the paper's assumptions, *is* a\n"
        "perfect failure detector -- that is Theorem 3.6."
    )


if __name__ == "__main__":
    main()
