#!/usr/bin/env python3
"""A replicated resource-allocation service (the paper's motivating example).

The introduction motivates UDC with a fault-tolerant service: actions
are executed on behalf of clients and change the service state (here,
allocating scarce licence seats).  The crucial property is
*non-repudiation*: if any replica -- even one later deemed faulty --
allocates a seat, the allocation must become part of the service's
communal history.  Clients must never observe an allocation that the
service later forgets because the allocating replica crashed.

This example runs a 5-replica service over fair-lossy channels with a
strong failure detector.  Replica p2 accepts an allocation and crashes
moments later; we show that every surviving replica still applies the
allocation, and we contrast with consensus-style behaviour, where the
survivors would have been free to drop it.

    python examples/replicated_service.py
"""

from repro.core.properties import dc2, udc_holds
from repro.core.protocols import StrongFDUDCProcess
from repro.detectors.standard import StrongOracle
from repro.model.context import make_process_ids
from repro.model.events import DoEvent
from repro.sim.executor import Executor
from repro.sim.failures import CrashPlan
from repro.sim.process import uniform_protocol
from repro.workloads.generators import action_id


class LicenseLedger:
    """The deterministic state machine each replica applies actions to."""

    def __init__(self, seats: int) -> None:
        self.seats = seats
        self.allocations: dict[str, str] = {}

    def apply(self, action) -> None:
        _, command = action
        verb, client = command.split(":")
        if verb == "alloc" and self.seats > 0:
            self.seats -= 1
            self.allocations[client] = "granted"
        elif verb == "free" and client in self.allocations:
            self.seats += 1
            del self.allocations[client]


def main() -> None:
    replicas = make_process_ids(5)

    # Client requests arrive at different replicas: each replica
    # initiates the allocation command it received.  p2 accepts
    # carol's request and crashes four ticks later.
    workload = [
        (1, "p1", action_id("p1", "alloc:alice")),
        (3, "p2", action_id("p2", "alloc:carol")),
        (5, "p4", action_id("p4", "alloc:bob")),
        (20, "p1", action_id("p1", "free:alice")),
    ]
    run = Executor(
        replicas,
        uniform_protocol(StrongFDUDCProcess),
        crash_plan=CrashPlan.of({"p2": 7}),
        workload=workload,
        detector=StrongOracle(),
        seed=7,
    ).run()

    print(f"service run: {run.duration} ticks, faulty replicas: {sorted(run.faulty())}")
    verdict = udc_holds(run)
    print(f"UDC across all commands: {'holds' if verdict else verdict.witness}")
    print()

    # Replay each replica's do-events through the ledger, in its local
    # order; UDC guarantees every correct replica applies the same set.
    print(f"{'replica':8} {'state':8} {'applied commands':40} ledger")
    for replica in replicas:
        ledger = LicenseLedger(seats=10)
        applied = []
        for event in run.final_history(replica).events_of_type(DoEvent):
            ledger.apply(event.action)
            applied.append(event.action[1])
        status = "crashed" if run.final_history(replica).crashed else "ok"
        print(
            f"{replica:8} {status:8} {', '.join(applied):40} "
            f"seats={ledger.seats} {ledger.allocations}"
        )
    print()

    # Non-repudiation: carol's allocation was initiated by the replica
    # that crashed -- and is nevertheless in every correct replica's
    # history.
    carol = action_id("p2", "alloc:carol")
    initiator_performed = run.final_history("p2").did(carol)
    survivors_performed = [
        r
        for r in replicas
        if not run.final_history(r).crashed and run.final_history(r).did(carol)
    ]
    print(
        f"carol's allocation: initiator p2 {'performed' if initiator_performed else 'crashed before performing'};"
        f" applied by survivors {survivors_performed}"
    )
    print(f"DC2 for carol's allocation: {'holds' if dc2(run, carol) else 'VIOLATED'}")
    print()
    applied_sets = {
        replica: frozenset(
            e.action for e in run.final_history(replica).events_of_type(DoEvent)
        )
        for replica in replicas
        if not run.final_history(replica).crashed
    }
    same_set = len(set(applied_sets.values())) == 1
    print(f"every correct replica applied the same SET of commands: {same_set}")
    print(
        "note: UDC promises the same set, not the same ORDER (Section 2.4:\n"
        "the paper is 'not concerned with executing actions in a particular\n"
        "order').  Ledgers above may diverge on order-sensitive commands --\n"
        "layer a total-order protocol on top when order matters."
    )
    print()
    print(
        "With consensus semantics the survivors could have agreed to drop a\n"
        "faulty member's command; UDC forbids exactly that repudiation."
    )


if __name__ == "__main__":
    main()
