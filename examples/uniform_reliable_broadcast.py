#!/usr/bin/env python3
"""Uniform Reliable Broadcast via UDC (Schiper-Sandoz / ATD99 isomorphism).

Footnote 9 of the paper: URB and UDC are isomorphic problems -- the
``init`` and ``do`` of UDC correspond to ``broadcast`` and ``deliver``
of URB.  This example builds a small URB facade over the UDC machinery
and exercises the three URB properties on a lossy network with crashes:

* validity: if a correct process broadcasts m, it eventually delivers m;
* uniform agreement: if ANY process delivers m (even one that then
  crashes), all correct processes deliver m;
* integrity: a process delivers m at most once, and only if m was
  broadcast.

The paper notes that Schiper and Sandoz implemented URB on top of Isis
virtual synchrony, which simulates *perfect* failure detection -- and
that Theorem 3.6 explains why they had to.

    python examples/uniform_reliable_broadcast.py
"""

from repro.core.properties import udc_holds
from repro.core.protocols import StrongFDUDCProcess
from repro.detectors.standard import StrongOracle
from repro.model.context import make_process_ids
from repro.model.events import DoEvent, InitEvent
from repro.model.run import Run
from repro.sim.executor import ExecutionConfig, Executor
from repro.sim.failures import CrashPlan
from repro.sim.network import ChannelConfig
from repro.sim.process import uniform_protocol
from repro.workloads.generators import action_id


def broadcast(workload: list, tick: int, sender: str, payload: str) -> tuple:
    """URB-broadcast = initiating a UDC action tagged with the message."""
    message_id = action_id(sender, f"urb:{payload}")
    workload.append((tick, sender, message_id))
    return message_id


def deliveries(run: Run, process: str) -> list[str]:
    """URB-deliver events of a process = its do events, in local order."""
    return [
        event.action[1].removeprefix("urb:")
        for event in run.final_history(process).events_of_type(DoEvent)
    ]


def main() -> None:
    group = make_process_ids(4)
    workload: list = []
    m1 = broadcast(workload, 1, "p1", "market-open")
    m2 = broadcast(workload, 4, "p2", "price=101")
    m3 = broadcast(workload, 6, "p3", "halt-trading")

    run = Executor(
        group,
        uniform_protocol(StrongFDUDCProcess),
        crash_plan=CrashPlan.of({"p3": 11}),  # the broadcaster of m3 dies
        workload=workload,
        detector=StrongOracle(),
        config=ExecutionConfig(channel=ChannelConfig(drop_prob=0.5)),
        seed=11,
    ).run()

    print(f"group: {group}, faulty: {sorted(run.faulty())}")
    print()
    for p in group:
        state = "crashed" if run.final_history(p).crashed else "correct"
        print(f"  {p} ({state:7}) delivered: {deliveries(run, p)}")
    print()

    # Uniform agreement: m3's broadcaster crashed; check whether anyone
    # delivered it, and if so that all correct processes did.
    delivered_m3 = [p for p in group if run.final_history(p).did(m3)]
    print(f"halt-trading delivered by: {delivered_m3 or 'nobody'}")
    correct = sorted(run.correct())
    if delivered_m3:
        uniform = all(run.final_history(p).did(m3) for p in correct)
        print(f"uniform agreement for halt-trading: {'holds' if uniform else 'VIOLATED'}")
    else:
        print("nobody delivered it -- uniform agreement holds vacuously")
    print()

    # Integrity: at-most-once, only-if-broadcast.
    broadcast_ids = {m1, m2, m3}
    for p in group:
        events = list(run.final_history(p).events_of_type(DoEvent))
        ids = [e.action for e in events]
        assert len(ids) == len(set(ids)), f"{p} delivered a message twice"
        assert set(ids) <= broadcast_ids, f"{p} delivered an unbroadcast message"
    print("integrity: every delivery unique and matches a broadcast")

    # And the whole thing is just UDC:
    verdict = udc_holds(run)
    print(f"UDC (= URB) verdict: {'holds' if verdict else verdict.witness}")


if __name__ == "__main__":
    main()
