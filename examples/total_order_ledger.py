#!/usr/bin/env python3
"""When order matters: UDC vs atomic broadcast on the same ledger.

Section 2.4: UDC is "not concerned with executing actions in a
particular order (e.g., total-order multicast)" -- and Table 1 shows
why that restraint is cheap: UDC needs weaker detectors than consensus.
This example runs the *same* bank-ledger workload twice:

1. under plain UDC (Prop 3.1's protocol): every correct replica applies
   the same SET of commands, but replicas may interleave them
   differently, and order-sensitive balances can diverge;
2. under atomic broadcast (the consensus-powered total-order extension
   in repro.core.atomic_broadcast): identical sequences, identical
   balances -- at the price of consensus's requirements (majority
   correct + <>S).

    python examples/total_order_ledger.py
"""

from repro.core.atomic_broadcast import AtomicBroadcastProcess, deliveries
from repro.core.protocols import StrongFDUDCProcess
from repro.detectors.standard import EventuallyWeakOracle, StrongOracle
from repro.model.context import make_process_ids
from repro.model.events import DoEvent
from repro.sim.executor import ExecutionConfig, Executor
from repro.sim.failures import CrashPlan
from repro.sim.process import uniform_protocol
from repro.workloads.generators import action_id

REPLICAS = make_process_ids(5)

# An order-sensitive workload: the withdrawal bounces iff it is applied
# before the deposit.
WORKLOAD = [
    (1, "p1", action_id("p1", "withdraw:60")),
    (2, "p2", action_id("p2", "deposit:50")),
    (4, "p4", action_id("p4", "withdraw:30")),
]
COMMANDS = {a for _, _, a in WORKLOAD}


def apply_commands(commands) -> tuple[int, int]:
    """Replay a command sequence; returns (balance, bounced)."""
    balance, bounced = 40, 0
    for _, command in commands:
        verb, amount = command.split(":")
        amount = int(amount)
        if verb == "deposit":
            balance += amount
        elif balance >= amount:
            balance -= amount
        else:
            bounced += 1
    return balance, bounced


def show(title: str, sequences: dict) -> bool:
    print(title)
    outcomes = set()
    for replica, seq in sequences.items():
        balance, bounced = apply_commands(seq)
        outcomes.add((tuple(seq), balance, bounced))
        order = " -> ".join(c.split(":")[0][:4] + c.split(":")[1] for _, c in seq)
        print(f"  {replica}: [{order}]  balance={balance} bounced={bounced}")
    agreed = len({(bal, b) for _, bal, b in outcomes}) == 1
    print(f"  replicas agree on final state: {agreed}\n")
    return agreed


def main() -> None:
    print("initial balance 40; commands: withdraw 60, deposit 50, withdraw 30\n")

    # --- plain UDC ---------------------------------------------------------
    udc_run = Executor(
        REPLICAS,
        uniform_protocol(StrongFDUDCProcess),
        workload=WORKLOAD,
        detector=StrongOracle(),
        seed=3,
    ).run()
    udc_sequences = {
        r: [
            e.action
            for e in udc_run.final_history(r).events_of_type(DoEvent)
        ]
        for r in REPLICAS
    }
    same_sets = len({frozenset(s) for s in udc_sequences.values()}) == 1
    print(f"[UDC]  every replica applied the same set: {same_sets}")
    udc_agree = show("[UDC]  per-replica orders and outcomes:", udc_sequences)

    # --- atomic broadcast ----------------------------------------------------
    ab_run = Executor(
        REPLICAS,
        uniform_protocol(AtomicBroadcastProcess),
        workload=WORKLOAD,
        detector=EventuallyWeakOracle(stabilization_tick=25),
        config=ExecutionConfig(max_ticks=4000),
        seed=3,
    ).run()
    ab_sequences = {r: deliveries(ab_run, r) for r in REPLICAS}
    ab_agree = show("[ABCAST]  per-replica orders and outcomes:", ab_sequences)

    print("takeaway: UDC guarantees the same command SET (non-repudiation)")
    print("with detectors as weak as Table 1 allows; agreeing on ORDER is")
    print("a consensus problem and inherits consensus's requirements")
    udc_word = "agreed (lucky seed)" if udc_agree else "diverged"
    ab_word = "agreed" if ab_agree else "DIVERGED (bug!)"
    print(f"(UDC state agreement: {udc_word}; atomic broadcast: {ab_word})")


if __name__ == "__main__":
    main()
