#!/usr/bin/env python3
"""Quickstart: Uniform Distributed Coordination in five minutes.

Runs the paper's Proposition 3.1 protocol -- UDC over fair-lossy
channels with a strong failure detector -- on five processes, one of
which crashes mid-protocol, and checks the three UDC conditions.

    python examples/quickstart.py
"""

from repro.core.properties import actions_in, dc1, dc2, dc3
from repro.core.protocols import StrongFDUDCProcess
from repro.detectors.standard import StrongOracle
from repro.model.context import make_process_ids
from repro.model.events import DoEvent
from repro.sim.executor import Executor
from repro.sim.failures import CrashPlan
from repro.sim.process import uniform_protocol
from repro.workloads.generators import single_action


def main() -> None:
    # A system of five processes, p3 crashing at tick 8.
    processes = make_process_ids(5)
    executor = Executor(
        processes,
        uniform_protocol(StrongFDUDCProcess),
        crash_plan=CrashPlan.of({"p3": 8}),
        workload=single_action("p1", tick=1),  # p1 initiates action ("p1", "a0")
        detector=StrongOracle(),  # weak accuracy + strong completeness
        seed=42,
    )
    run = executor.run()

    print(f"run finished at time {run.duration} with {sum(1 for p in processes for _ in run.events(p))} events")
    print(f"faulty processes: {sorted(run.faulty()) or 'none'}")
    print()

    action = next(iter(actions_in(run)))
    print(f"action {action!r} (initiated by {action[0]}):")
    for p in processes:
        history = run.final_history(p)
        status = "crashed" if history.crashed else "correct"
        did = "performed" if history.did(action) else "did NOT perform"
        when = next(
            (t for t, e in run.timeline(p) if isinstance(e, DoEvent) and e.action == action),
            None,
        )
        suffix = f" at time {when}" if when is not None else ""
        print(f"  {p}: {status:8} {did}{suffix}")
    print()

    # The three conditions of Section 2.4.
    for name, check in (("DC1", dc1), ("DC2", dc2), ("DC3", dc3)):
        verdict = check(run, action)
        print(f"{name}: {'holds' if verdict else 'VIOLATED: ' + verdict.witness}")


if __name__ == "__main__":
    main()
