#!/usr/bin/env python3
"""Exhaustive checking: find, shrink, and explain a UDC violation.

The sampled ensembles in the other examples can only ever say "no
violation found in the runs we happened to draw".  ``repro.explore``
removes the hedge: it enumerates *every* run of a protocol+context up
to a horizon, so a clean report is a proof (up to T) and a violation
comes with exact branch coordinates that replay and shrink.

The target is the paper's central negative result made concrete: the
non-uniform protocol NUDC satisfies nUDC but not UDC once crashes and
message loss conspire.  We (1) exhaustively explore NUDC over a lossy
channel with one crash allowed, (2) let a monitor catch the UDC
violations, (3) delta-debug one down to a locally minimal witness, and
(4) ask the epistemic kernel -- over the *complete* system, so the
answer is sound -- why the violation had to happen: no survivor ever
comes to know the crash.

    python examples/exhaustive_udc_check.py
"""

from repro import (
    ExploreSpec,
    UniformityMonitor,
    explore,
    make_process_ids,
    replay_exploration,
    shrink_violation,
    uniform_protocol,
)
from repro.core.protocols import NUDCProcess
from repro.knowledge import Crashed, Knows, ModelChecker
from repro.model.events import DoEvent
from repro.model.run import Point
from repro.workloads.generators import single_action


def main() -> None:
    processes = make_process_ids(3)

    # 1. Every run of NUDC up to T=6: crashes of at most one process at
    #    ticks {1,3,5}, all message interleavings, and a fair-lossy
    #    channel that may drop each copy up to once in a row.
    spec = ExploreSpec(
        processes=processes,
        protocol=uniform_protocol(NUDCProcess),
        horizon=6,
        max_failures=1,
        crash_ticks=(1, 3, 5),
        workload=single_action("p1", tick=1),
        lossy=True,
        max_consecutive_drops=1,
    )
    udc = UniformityMonitor()  # DC1 + DC2 + DC3
    report = explore(spec, monitors=[udc], cache=None)
    print(report.summary())
    print()

    # 2. The monitor's catch: UDC fails (the paper's Section 3 lower
    #    bound in miniature), while the *non-uniform* nUDC still holds.
    print(f"UDC violations found: {len(report.violations)}")
    for violation in report.violations:
        print(f"  {violation.describe()}")
    nudc_report = explore(
        spec, monitors=[UniformityMonitor(uniform=False)], cache=None
    )
    print(f"nUDC violations found: {len(nudc_report.violations)}")
    print()

    # 3. Shrink the drop-based violation to a locally minimal witness:
    #    no crash removable, no adversarial choice zeroable.
    violation = next(v for v in report.violations if v.trace)
    shrunk = shrink_violation(spec, violation, monitor=udc)
    print(
        f"minimal witness: crashes={shrunk.crashes} "
        f"trace={tuple(shrunk.trace)} "
        f"({shrunk.attempts} replays, {shrunk.reductions} reductions)"
    )
    witness = replay_exploration(spec, shrunk.crash_plan, shrunk.trace)
    assert witness == shrunk.run  # coordinates reproduce the run exactly
    doers = sorted(
        p
        for p in processes
        if any(isinstance(e, DoEvent) for e in witness.events(p))
    )
    print(f"in the witness: {doers} perform the action, then p1 crashes;")
    print("both alpha-copies are dropped, so nobody else ever acts.")
    print()

    # 4. Why it had to happen, epistemically.  Over the COMPLETE system
    #    (every bounded run, so Knows is sound, not sample-dependent):
    #    without a failure detector no survivor can distinguish the
    #    witness from a run where p1 is merely slow -- K_p crash(p1)
    #    never holds, and with it goes any hope of uniform coordination.
    system = report.system()
    print(f"kernel input: {len(system)} runs, complete={system.complete}")
    checker = ModelChecker(system)
    survivors = sorted(set(processes) - witness.faulty())
    learned = [
        p
        for p in survivors
        for m in range(witness.duration + 1)
        if checker.holds(Knows(p, Crashed("p1")), Point(witness, m))
    ]
    print(
        "survivors that ever know crash(p1) in the witness: "
        f"{sorted(set(learned)) or 'none'}"
    )
    print("no survivor ever knows the crash: " f"{not learned}")


if __name__ == "__main__":
    main()
