#!/usr/bin/env python3
"""The failure-detector zoo: every class in the paper, measured.

Runs the same crash scenario under each detector oracle and prints the
accuracy/completeness matrix (Section 2.2's definitions, decided by the
property checkers), together with whether Proposition 3.1's UDC
protocol succeeds with that detector.

    python examples/failure_detector_zoo.py
"""

from repro.core.properties import udc_holds
from repro.core.protocols import StrongFDUDCProcess
from repro.detectors.atd import AtdRotatingOracle
from repro.detectors.base import NoDetector
from repro.detectors.properties import (
    atd_accuracy,
    impermanent_strong_completeness,
    impermanent_weak_completeness,
    strong_accuracy,
    strong_completeness,
    weak_accuracy,
    weak_completeness,
)
from repro.detectors.standard import (
    EventuallyWeakOracle,
    ImpermanentStrongOracle,
    ImpermanentWeakOracle,
    LyingOracle,
    PerfectOracle,
    StrongOracle,
    WeakOracle,
)
from repro.model.context import make_process_ids
from repro.sim.executor import Executor
from repro.sim.failures import CrashPlan
from repro.sim.process import uniform_protocol
from repro.workloads.generators import post_crash_workload, single_action

PROCESSES = make_process_ids(4)
PLAN = CrashPlan.of({"p2": 6, "p4": 14})
SEEDS = range(4)

PROPERTIES = [
    ("strong acc", strong_accuracy),
    ("weak acc", weak_accuracy),
    ("ATD acc", atd_accuracy),
    ("strong compl", strong_completeness),
    ("weak compl", weak_completeness),
    ("imp-s compl", impermanent_strong_completeness),
    ("imp-w compl", impermanent_weak_completeness),
]

ZOO = [
    ("perfect", PerfectOracle()),
    ("strong", StrongOracle(false_positive_rate=0.4)),
    ("weak", WeakOracle()),
    ("imp-strong", ImpermanentStrongOracle(retract_after=5)),
    ("imp-weak", ImpermanentWeakOracle(retract_after=5)),
    ("<>S", EventuallyWeakOracle(stabilization_tick=30, noise_rate=0.6)),
    ("ATD", AtdRotatingOracle(rotation_period=10)),
    ("lying", LyingOracle()),
    ("none", NoDetector()),
]


def main() -> None:
    workload = single_action("p1", tick=1) + post_crash_workload(
        PROCESSES, PLAN, actions_per_survivor=1
    )

    print(f"scenario: n={len(PROCESSES)}, crashes {dict(PLAN.crashes)}, {len(list(SEEDS))} seeds")
    print("a property is ticked iff it holds in EVERY seeded run\n")
    header = f"{'detector':12}" + "".join(f"{name:>14}" for name, _ in PROPERTIES)
    header += f"{'UDC':>8}"
    print(header)
    print("-" * len(header))

    for name, oracle in ZOO:
        runs = [
            Executor(
                PROCESSES,
                uniform_protocol(StrongFDUDCProcess),
                crash_plan=PLAN,
                workload=workload,
                detector=oracle,
                seed=seed,
            ).run()
            for seed in SEEDS
        ]
        row = f"{name:12}"
        for _, checker in PROPERTIES:
            holds = all(bool(checker(run)) for run in runs)
            row += f"{'yes' if holds else '-':>14}"
        udc = all(bool(udc_holds(run)) for run in runs)
        row += f"{'yes' if udc else 'FAILS':>8}"
        print(row)

    print()
    print("readings:")
    print(" * perfect/strong/weak nest exactly as Section 2.2 defines;")
    print(" * impermanent variants lose the *permanent* completeness column;")
    print(" * 'weak' and 'imp-weak' FAIL UDC with this protocol: only the")
    print("   witness suspects a crashed process, so everyone else waits")
    print("   forever -- that gap is precisely what Prop 2.1's gossip")
    print("   conversion closes (see experiment E04);")
    print(" * 'lying' may pass on lucky seeds -- its false suspicions unblock")
    print("   waits while messages happen to survive; ablation A13 shows the")
    print("   uniformity violations such a detector produces at scale;")
    print(" * 'none' fails UDC: with a crash, Prop 3.1's wait never resolves")
    print("   (the DC1 liveness half), matching Table 1's unreliable column.")


if __name__ == "__main__":
    main()
