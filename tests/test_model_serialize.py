"""Round-trip tests for run/system serialization."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocols import GeneralizedFDUDCProcess, StrongFDUDCProcess
from repro.detectors.conversions import with_gossip
from repro.detectors.generalized import GeneralizedOracle
from repro.detectors.standard import PerfectOracle, WeakOracle
from repro.model.context import make_process_ids
from repro.model.serialize import (
    decode_event,
    decode_value,
    encode_event,
    encode_value,
    load_run,
    load_system,
    run_from_dict,
    run_to_dict,
    save_run,
    save_system,
    system_from_dict,
    system_to_dict,
)
from repro.model.system import System
from repro.sim.executor import Executor
from repro.sim.failures import CrashPlan
from repro.sim.process import uniform_protocol
from repro.workloads.generators import single_action

PROCS = make_process_ids(4)


def protocol_run(seed=0, generalized=False, gossip=False):
    if generalized:
        factory = uniform_protocol(GeneralizedFDUDCProcess, t=2)
        detector = GeneralizedOracle(2)
    else:
        factory = uniform_protocol(StrongFDUDCProcess)
        detector = PerfectOracle()
    if gossip:
        factory = with_gossip(factory)
        detector = WeakOracle()
    return Executor(
        PROCS,
        factory,
        crash_plan=CrashPlan.of({"p3": 7}),
        workload=single_action("p1", tick=1),
        detector=detector,
        seed=seed,
    ).run()


class TestValueCodec:
    @given(
        st.recursive(
            st.none() | st.booleans() | st.integers() | st.text(max_size=8),
            lambda children: st.tuples(children, children)
            | st.frozensets(st.text(max_size=4), max_size=3),
            max_leaves=8,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_round_trip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_json_safe(self):
        encoded = encode_value((("a", 1), frozenset({"x", "y"})))
        json.dumps(encoded)  # must not raise

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            encode_value(object())

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            decode_value({"__t": "mystery", "v": []})


class TestEventCodec:
    def test_every_kind_round_trips(self):
        run = protocol_run()
        for p in PROCS:
            for e in run.events(p):
                assert decode_event(encode_event(e)) == e

    def test_generalized_reports_round_trip(self):
        run = protocol_run(generalized=True)
        for p in PROCS:
            for e in run.events(p):
                assert decode_event(encode_event(e)) == e

    def test_gossip_payloads_round_trip(self):
        # Gossip payloads are frozensets of process ids.
        run = protocol_run(gossip=True)
        for p in PROCS:
            for e in run.events(p):
                assert decode_event(encode_event(e)) == e


class TestRunRoundTrip:
    def test_equality_preserved(self):
        run = protocol_run()
        clone = run_from_dict(run_to_dict(run))
        assert clone == run
        assert hash(clone) == hash(run)

    def test_dict_is_json_serializable(self):
        json.dumps(run_to_dict(protocol_run()))

    def test_meta_scalars_survive(self):
        run = protocol_run(seed=9)
        clone = run_from_dict(run_to_dict(run))
        assert clone.meta["seed"] == 9
        assert clone.meta["detector"] == "perfect"

    def test_file_round_trip(self, tmp_path):
        run = protocol_run()
        path = tmp_path / "run.json"
        save_run(run, path)
        assert load_run(path) == run

    def test_version_check(self):
        data = run_to_dict(protocol_run())
        data["version"] = 999
        with pytest.raises(ValueError, match="version"):
            run_from_dict(data)


class TestSystemRoundTrip:
    def test_system_file_round_trip(self, tmp_path):
        system = System([protocol_run(s) for s in range(3)])
        path = tmp_path / "system.json"
        save_system(system, path)
        loaded = load_system(path)
        assert loaded.runs == system.runs

    def test_knowledge_agrees_after_round_trip(self):
        """The part that would break if frozensets/tuples flattened:
        histories must hash identically, so the ~_p index -- and hence
        knowledge -- must agree between original and clone."""
        from repro.model.run import Point

        system = System([protocol_run(s) for s in range(2)])
        clone = system_from_dict(system_to_dict(system))
        for run, crun in zip(system.runs, clone.runs):
            for m in range(0, run.duration, 9):
                for p in PROCS:
                    assert system.known_crashed_set(
                        p, Point(run, m)
                    ) == clone.known_crashed_set(p, Point(crun, m))
