"""Integration tests for the executor: scheduling, crashes, quiescence,
determinism, and validation of generated runs."""

import pytest

from repro.core.protocols import StrongFDUDCProcess
from repro.detectors.standard import PerfectOracle
from repro.model.context import ChannelSemantics, make_process_ids
from repro.model.events import (
    CrashEvent,
    Message,
    SuspectEvent,
)
from repro.model.run import validate_run
from repro.sim.executor import ExecutionConfig, Executor, execute
from repro.sim.failures import CrashPlan
from repro.sim.network import ChannelConfig
from repro.sim.process import ProcessEnv, ProtocolProcess, uniform_protocol
from repro.workloads.generators import single_action

PROCS = make_process_ids(3)


class EchoProcess(ProtocolProcess):
    """Minimal protocol: performs on init and replies to any message."""

    def on_init(self, action):
        self.env.broadcast(Message("ping", action))
        self.env.perform(action)

    def on_receive(self, sender, message):
        if message.kind == "ping":
            self.env.send(sender, Message("pong", message.payload))


def run_echo(**kwargs):
    kwargs.setdefault("workload", single_action("p1", tick=1))
    return execute(PROCS, uniform_protocol(EchoProcess), **kwargs)


class TestBasicExecution:
    def test_r1_no_events_at_time_zero(self):
        run = run_echo(seed=1)
        for p in PROCS:
            assert len(run.history(p, 0)) == 0

    def test_init_becomes_event(self):
        run = run_echo(seed=1)
        assert run.final_history("p1").inited(("p1", "a0"))

    def test_generated_run_validates(self):
        run = run_echo(seed=2)
        validate_run(run)

    def test_messages_flow(self):
        run = run_echo(seed=3)
        assert run.final_history("p2").received("p1")
        assert run.final_history("p1").received("p2")  # pong

    def test_unknown_workload_process_rejected(self):
        with pytest.raises(ValueError):
            Executor(
                PROCS,
                uniform_protocol(EchoProcess),
                workload=[(0, "p9", ("p9", "a"))],
            )

    def test_unknown_crash_process_rejected(self):
        with pytest.raises(ValueError):
            Executor(
                PROCS,
                uniform_protocol(EchoProcess),
                crash_plan=CrashPlan.of({"nope": 1}),
            )

    def test_empty_process_set_rejected(self):
        with pytest.raises(ValueError):
            Executor((), uniform_protocol(EchoProcess))


class TestDeterminism:
    def test_same_seed_same_run(self):
        a = run_echo(seed=17)
        b = run_echo(seed=17)
        assert a == b

    def test_different_seeds_diverge(self):
        runs = {run_echo(seed=s) for s in range(6)}
        assert len(runs) > 1

    def test_protocol_runs_reproducible(self):
        kwargs = dict(
            crash_plan=CrashPlan.of({"p2": 6}),
            workload=single_action("p1", tick=1),
            detector=PerfectOracle(),
            seed=5,
        )
        a = execute(PROCS, uniform_protocol(StrongFDUDCProcess), **kwargs)
        b = execute(PROCS, uniform_protocol(StrongFDUDCProcess), **kwargs)
        assert a == b


class TestCrashes:
    def test_crash_is_last_event(self):
        run = run_echo(crash_plan=CrashPlan.of({"p2": 4}), seed=1)
        h = run.final_history("p2")
        assert h.crashed
        assert isinstance(h.last, CrashEvent)

    def test_crash_time_recorded(self):
        run = run_echo(crash_plan=CrashPlan.of({"p2": 4}), seed=1)
        assert run.crash_time("p2") == 4

    def test_faulty_set_matches_plan(self):
        run = run_echo(crash_plan=CrashPlan.of({"p2": 4, "p3": 9}), seed=1)
        assert run.faulty() == frozenset({"p2", "p3"})

    def test_crashed_process_appends_nothing_after(self):
        run = run_echo(crash_plan=CrashPlan.of({"p2": 4}), seed=1)
        assert all(t <= 4 for t, _ in run.timeline("p2"))

    def test_crashed_initiator_never_inits(self):
        run = run_echo(
            crash_plan=CrashPlan.of({"p1": 1}),
            workload=single_action("p1", tick=5),
            seed=1,
        )
        assert not run.final_history("p1").inited(("p1", "a0"))

    def test_crash_tick_zero_lands_at_one(self):
        # R1 pins r(0) empty, so a planned tick-0 crash lands at tick 1.
        run = run_echo(crash_plan=CrashPlan.of({"p3": 0}), seed=1)
        assert run.crash_time("p3") == 1


class TestQuiescence:
    def test_echo_quiesces_quickly(self):
        run = run_echo(seed=4)
        assert run.duration < 200
        assert not run.meta["hit_tick_cap"]

    def test_tick_cap_respected(self):
        config = ExecutionConfig(max_ticks=30)
        run = run_echo(seed=4, config=config)
        assert run.duration <= 30

    def test_final_cut_is_fixpoint(self):
        # After quiescence nothing is pending: re-validate that no
        # events occur in the last quiescence_window ticks.
        config = ExecutionConfig(quiescence_window=10)
        run = run_echo(seed=4, config=config)
        if not run.meta["hit_tick_cap"]:
            recent = [
                t
                for p in PROCS
                for t, _ in run.timeline(p)
                if t > run.duration - 10
            ]
            assert recent == []


class TestDetectorIntegration:
    def test_suspect_events_appear(self):
        run = run_echo(
            crash_plan=CrashPlan.of({"p3": 3}),
            detector=PerfectOracle(),
            seed=2,
        )
        suspects = [
            e
            for p in ("p1", "p2")
            for e in run.events(p)
            if isinstance(e, SuspectEvent)
        ]
        assert suspects
        assert all(e.report.suspects == frozenset({"p3"}) for e in suspects)

    def test_no_detector_no_suspect_events(self):
        run = run_echo(crash_plan=CrashPlan.of({"p3": 3}), seed=2)
        assert not any(
            isinstance(e, SuspectEvent) for p in PROCS for e in run.events(p)
        )

    def test_crashed_process_gets_no_reports_after_crash(self):
        run = run_echo(
            crash_plan=CrashPlan.of({"p2": 3, "p3": 8}),
            detector=PerfectOracle(),
            seed=2,
        )
        for t, e in run.timeline("p2"):
            if isinstance(e, SuspectEvent):
                assert t < 3


class TestMeta:
    def test_meta_fields(self):
        run = run_echo(seed=9, detector=PerfectOracle())
        assert run.meta["seed"] == 9
        assert run.meta["detector"] == "perfect"
        assert run.meta["channel"] == "fair_lossy"
        assert "dropped" in run.meta and "delivered" in run.meta

    def test_reliable_channel_meta(self):
        config = ExecutionConfig(
            channel=ChannelConfig(semantics=ChannelSemantics.RELIABLE)
        )
        run = run_echo(seed=9, config=config)
        assert run.meta["channel"] == "reliable"
        assert run.meta["dropped"] == 0


class TestSpecExecution:
    def spec(self, **overrides):
        from repro.runtime import RunSpec

        fields = dict(
            processes=PROCS,
            protocol=uniform_protocol(EchoProcess),
            crash_plan=CrashPlan.of({"p2": 4}),
            workload=single_action("p1", tick=1),
            detector=PerfectOracle(),
            seed=11,
        )
        fields.update(overrides)
        return RunSpec(**fields)

    def test_from_spec_equals_legacy_constructor(self):
        spec = self.spec()
        via_spec = Executor.from_spec(spec).run()
        legacy = Executor(
            PROCS,
            uniform_protocol(EchoProcess),
            crash_plan=spec.crash_plan,
            workload=spec.workload,
            detector=spec.detector,
            seed=spec.seed,
        ).run()
        assert via_spec == legacy

    def test_execute_accepts_a_spec(self):
        spec = self.spec()
        assert execute(spec) == Executor.from_spec(spec).run()

    def test_execute_spec_rejects_extra_arguments(self):
        with pytest.raises(TypeError):
            execute(self.spec(), uniform_protocol(EchoProcess))

    def test_legacy_execute_warns_deprecation(self):
        with pytest.warns(DeprecationWarning, match="RunSpec"):
            execute(PROCS, uniform_protocol(EchoProcess), seed=1)

    def test_crash_index_covers_multi_crash_ticks(self):
        # Two processes crashing at the same tick both land there.
        spec = self.spec(crash_plan=CrashPlan.of({"p2": 4, "p3": 4}))
        run = Executor.from_spec(spec).run()
        assert run.crash_time("p2") == 4
        assert run.crash_time("p3") == 4


class TestProcessEnv:
    def make_env(self):
        return ProcessEnv("p1", PROCS)

    def test_send_to_self_rejected(self):
        with pytest.raises(ValueError):
            self.make_env().send("p1", Message("m"))

    def test_send_to_unknown_rejected(self):
        with pytest.raises(ValueError):
            self.make_env().send("p9", Message("m"))

    def test_broadcast_excludes_self(self):
        env = self.make_env()
        env.broadcast(Message("m"))
        receivers = [e.receiver for e in env.outbox]
        assert receivers == ["p2", "p3"]

    def test_perform_idempotent(self):
        env = self.make_env()
        env.perform("a")
        env.perform("a")
        assert env.outbox_size == 1
        assert env.has_performed("a")

    def test_others(self):
        assert self.make_env().others == ("p2", "p3")
