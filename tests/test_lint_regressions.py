"""Regression tests for the sites the static analyzer audited.

The DET005 suppressions in ``repro.model.system`` rest on one claim:
every id()-keyed run is strongly pinned by ``self._runs``, so a live
foreign object can never alias a member's identity, and foreign runs
resolve by *value* (or not at all).  These tests pin that contract, plus
the two true positives the linter surfaced (set-iteration order leaking
into an error message and into the reference kernel's sweep order).
"""

from __future__ import annotations

import pickle
from pathlib import Path

import pytest

from repro.lint import lint_paths
from repro.knowledge.analysis import a4_instance_holds
from repro.knowledge.formulas import Inited
from repro.knowledge.semantics import ModelChecker
from repro.model.events import InitEvent, Message, ReceiveEvent, SendEvent
from repro.model.run import Point, Run
from repro.model.synthetic import synthetic_system
from repro.model.system import System

MSG = Message("m")


class TestRunIndexIdentityAudit:
    def test_members_resolve_by_identity(self) -> None:
        system = synthetic_system(3, 6, seed=11)
        for i, run in enumerate(system.runs):
            assert system.run_index(run) == i

    def test_equal_foreign_run_resolves_by_value(self) -> None:
        """A pickled clone has a different id() but the same value; the
        identity map must miss and the value fallback must answer."""
        system = synthetic_system(3, 6, seed=11)
        for i, run in enumerate(system.runs):
            clone = pickle.loads(pickle.dumps(run))
            assert clone is not run and clone == run
            assert system.run_index(clone) == i
            assert system.point_id(Point(clone, 0)) == system.point_id(
                Point(run, 0)
            )

    def test_unrelated_foreign_run_is_unknown(self) -> None:
        system = synthetic_system(3, 6, seed=11)
        other = synthetic_system(3, 1, seed=99).runs[0]
        assert other not in system.runs
        assert system.run_index(other) is None
        assert system.point_id(Point(other, 0)) is None

    def test_transient_objects_never_alias_members(self) -> None:
        """Id recycling stress: allocate and drop many runs; a recycled
        id can only ever be *asked about* via a new live object, which
        cannot share an id with the pinned members."""
        system = synthetic_system(3, 4, seed=7)
        member_ids = {id(r) for r in system.runs}
        for k in range(200):
            transient = synthetic_system(3, 1, seed=1000 + k).runs[0]
            assert id(transient) not in member_ids
            idx = system.run_index(transient)
            if idx is not None:  # only via the value fallback
                assert system.runs[idx] == transient


class TestWholeProgramAudit:
    """The whole-program rules (ASY003/ASY004/DET007/POOL004) audited
    ``src/repro`` and found the serve package already disciplined: every
    blocking state/WAL operation is executor-shipped and every
    read-modify-write spanning an await holds the session lock.  These
    tests pin that the analysis *sees* the code (the effect fixpoint
    resolves the blocking chains) and still reports it clean — so a
    future refactor that drops the executor or the lock turns into a
    lint finding, and a future analyzer regression that goes blind
    fails the visibility assertions instead of passing vacuously."""

    @staticmethod
    def _src() -> Path:
        return Path(__file__).parent.parent / "src" / "repro"

    def test_new_rules_report_serve_clean(self) -> None:
        new_rules = {"ASY003", "ASY004", "DET007", "POOL004"}
        report = lint_paths([self._src()], select=lambda rid: rid in new_rules)
        assert report.findings == (), "\n".join(
            f.render() for f in report.findings
        )

    def test_effect_analysis_sees_serve_blocking_chains(self) -> None:
        """Visibility guard: the WAL/state persistence helpers the
        server executor-ships ARE blocking in the effect fixpoint; the
        coroutines that ship them are NOT.  If the fixpoint went blind,
        the first assertion fails; if the executor discipline broke,
        ASY003 fires via test_new_rules_report_serve_clean."""
        from repro.lint.effects import analyze
        from repro.lint.engine import (
            _display_path,
            _parse_one,
            _split_rules,
            iter_python_files,
        )
        from repro.lint.cache import file_digest
        from repro.lint.project import ProjectIndex
        from repro.lint.registry import select_rules

        file_rules, _ = _split_rules(select_rules(None))
        summaries = []
        for path in iter_python_files([self._src()]):
            data = path.read_bytes()
            result = _parse_one(
                path,
                _display_path(path),
                file_digest(data),
                data.decode("utf-8"),
                file_rules,
            )
            assert result.parse_error is None, result.parse_error
            assert result.summary is not None
            summaries.append(result.summary)
        effects = analyze(ProjectIndex.build(summaries))

        blocking = {
            gqn
            for gqn in effects.effects
            if effects.has_effect(gqn, "blocking")
        }
        # The persistence layer the server off-loads is visibly blocking.
        assert any(gqn.startswith("repro.serve.state::") for gqn in blocking)
        # The server coroutines that executor-ship it stay clean.
        server_coroutines = [
            gqn
            for gqn, decl in effects.index.functions.items()
            if gqn.startswith("repro.serve.server::") and decl.is_async
        ]
        assert server_coroutines, "expected coroutines in repro.serve.server"
        leaked = [gqn for gqn in server_coroutines if gqn in blocking]
        assert leaked == [], f"event-loop blocking leaked into: {leaked}"


class TestSetOrderRegressions:
    def _checker(self) -> ModelChecker:
        procs = ("p1", "p2", "p3")
        learn = Run(
            procs,
            {
                "p1": [(4, ReceiveEvent("p1", "p2", MSG))],
                "p2": [
                    (1, InitEvent("p2", ("p2", "x"))),
                    (3, SendEvent("p2", "p1", MSG)),
                ],
                "p3": [],
            },
            duration=6,
        )
        silent = Run(procs, {"p1": [], "p2": [], "p3": []}, duration=6)
        return ModelChecker(System([learn, silent]))

    def test_a4_precondition_error_names_smallest_process(self) -> None:
        """The precondition loop iterates sorted(group), so the process
        named in the error is the lexicographically smallest knower —
        not whichever one set iteration order yields first."""
        mc = self._checker()
        phi = Inited("p2", ("p2", "x"))
        point = Point(mc.system.runs[0], 5)  # p1 heard, p2 acted: both know
        group = frozenset({"p2", "p1"})
        with pytest.raises(ValueError) as exc:
            a4_instance_holds(mc, phi, point, group)
        assert str(exc.value).startswith("p1 ")
