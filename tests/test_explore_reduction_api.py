"""Tests for the redesigned exploration API: reduction modes, symmetry,
sharding, incremental extension, and the deprecation shims.

The load-bearing checks are the differential ones: ``reduction="dpor"``
and ``reduction="dpor+symmetry"`` must produce the *same ordered run
list*, the same violation sets, and bit-identical ``Knows``/``C_G``
answers as the unreduced ``reduction="none"`` baseline — for any worker
count.  That is what licenses running the reductions by default.
"""

import warnings

import pytest

from repro import (
    Explorer,
    ExploreSpec,
    ReductionConfig,
    UniformityMonitor,
    explore,
    make_process_ids,
    uniform_protocol,
)
from repro.core.protocols import (
    NUDCProcess,
    ReliableUDCProcess,
    StrongFDUDCProcess,
)
from repro.detectors import PerfectOracle
from repro.explore.scheduler import replay
from repro.explore.spec import REDUCTION_MODES
from repro.explore.symmetry import run_respects_quotient, symmetric_spec
from repro.knowledge import Crashed, GroupChecker, ModelChecker
from repro.model.events import Message
from repro.model.run import Point
from repro.runtime import RunCache
from repro.sim.process import ProtocolProcess
from repro.workloads.generators import single_action


def spec_of(n=3, protocol=NUDCProcess, **overrides):
    base = dict(
        processes=make_process_ids(n),
        protocol=uniform_protocol(protocol),
        horizon=5,
        max_failures=1,
        crash_ticks=(1, 2),
        workload=single_action("p1", tick=1),
    )
    base.update(overrides)
    return ExploreSpec(**base)


def run_key(run):
    return (
        tuple((p, tuple(run.timeline(p))) for p in run.processes),
        run.meta["quiescent"],
    )


def ordered_keys(report):
    return [run_key(r) for r in report.runs]


#: the differential matrix: NUDC / reliable-UDC / detector-assisted UDC,
#: lossy and reliable channels, with and without workloads
DIFFERENTIAL_SPECS = {
    "nudc-lossy": spec_of(
        lossy=True, max_consecutive_drops=1, horizon=6, crash_ticks=(1, 3, 5)
    ),
    "reliable-udc": spec_of(protocol=ReliableUDCProcess),
    "fd-udc-detector": spec_of(
        protocol=StrongFDUDCProcess, detector=PerfectOracle(), horizon=4
    ),
    "symmetric-crash-only": spec_of(
        n=4, workload=(), max_failures=2, horizon=5
    ),
}


class ChattyProcess(ProtocolProcess):
    """Passes the *static* symmetry gate (no workload, no detector,
    uniform, pid-free kwargs) but broadcasts — so only the *dynamic*
    asymmetry detector can catch that renaming is unsound for it."""

    def __init__(self, pid, env):
        super().__init__(pid, env)
        self.sent = False

    def on_tick(self):
        if not self.sent:
            self.sent = True
            self.env.broadcast(Message("hello", None))

    def wants_to_act(self):
        return not self.sent


class TestReductionConfig:
    def test_modes_are_the_documented_literals(self):
        assert REDUCTION_MODES == ("none", "dpor", "dpor+symmetry")
        for mode in REDUCTION_MODES:
            assert spec_of(reduction=mode).reduction == mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            spec_of(reduction="por")

    def test_reduction_config_validated(self):
        with pytest.raises(ValueError):
            ReductionConfig(symmetry="sometimes")
        cfg = ReductionConfig(drop_elision=False, incremental=False)
        assert spec_of(reduction_config=cfg).reduction_config is cfg

    def test_digest_tracks_reduction(self):
        a = spec_of()
        assert a.digest() != a.with_(reduction="none").digest()
        assert (
            a.digest()
            != a.with_(
                reduction_config=ReductionConfig(drop_elision=False)
            ).digest()
        )

    def test_fingerprint_surface_is_gone(self):
        with pytest.raises(ImportError):
            from repro.explore.reduction import FingerprintSet  # noqa: F401


class TestDifferential:
    """dpor and dpor+symmetry must be invisible in the results."""

    @pytest.mark.parametrize("name", sorted(DIFFERENTIAL_SPECS))
    def test_run_lists_identical_across_modes(self, name):
        spec = DIFFERENTIAL_SPECS[name]
        baseline = explore(spec.with_(reduction="none"), cache=None)
        assert baseline.stats.exhaustive
        for mode in ("dpor", "dpor+symmetry"):
            report = explore(spec.with_(reduction=mode), cache=None)
            assert report.stats.exhaustive
            assert ordered_keys(report) == ordered_keys(baseline), (
                name,
                mode,
            )

    @pytest.mark.parametrize("name", sorted(DIFFERENTIAL_SPECS))
    def test_violation_sets_identical_across_modes(self, name):
        spec = DIFFERENTIAL_SPECS[name]
        reports = {
            mode: explore(
                spec.with_(reduction=mode),
                monitors=[UniformityMonitor()],
                cache=None,
            )
            for mode in REDUCTION_MODES
        }
        reference = {
            (v.monitor, run_key(v.run))
            for v in reports["none"].violations
        }
        for mode in ("dpor", "dpor+symmetry"):
            got = {
                (v.monitor, run_key(v.run))
                for v in reports[mode].violations
            }
            assert got == reference, (name, mode)

    def test_knowledge_bit_identical_under_symmetry(self):
        spec = DIFFERENTIAL_SPECS["symmetric-crash-only"]
        baseline = explore(spec.with_(reduction="none"), cache=None)
        reduced = explore(spec.with_(reduction="dpor+symmetry"), cache=None)
        assert reduced.stats.symmetry_active
        fast, ref = reduced.system(), baseline.system()
        other = {run: run for run in ref.runs}
        procs = spec.processes
        for run in fast.runs:
            for time in range(run.duration + 1):
                pt, pt_ref = Point(run, time), Point(other[run], time)
                for p in procs:
                    assert fast.known_crashed_set(p, pt) == (
                        ref.known_crashed_set(p, pt_ref)
                    )
        for phi in (Crashed("p1"), Crashed("p4")):
            fast_ck = GroupChecker(ModelChecker(fast))
            ref_ck = GroupChecker(ModelChecker(ref))
            assert fast_ck.common_knowledge_points(procs, phi) == (
                ref_ck.common_knowledge_points(procs, phi)
            )


class TestSymmetry:
    def test_static_gate(self):
        assert symmetric_spec(DIFFERENTIAL_SPECS["symmetric-crash-only"])
        assert not symmetric_spec(spec_of())  # workload pins p1
        assert not symmetric_spec(
            DIFFERENTIAL_SPECS["fd-udc-detector"]
        )  # detector observes identities

    def test_folds_crash_only_orbits(self):
        spec = DIFFERENTIAL_SPECS["symmetric-crash-only"]
        report = explore(spec.with_(reduction="dpor+symmetry"), cache=None)
        assert report.stats.symmetry_active
        assert report.stats.symmetry_plans_folded > 0
        assert report.stats.symmetry_runs_mirrored > 0
        # folding must actually save executions
        baseline = explore(spec.with_(reduction="dpor"), cache=None)
        assert report.stats.executions < baseline.stats.executions

    def test_auto_disables_on_pinned_specs(self):
        report = explore(
            spec_of(reduction="dpor+symmetry"), cache=None
        )
        assert not report.stats.symmetry_active
        assert report.stats.symmetry_plans_folded == 0
        assert "symmetry auto-disabled" in report.stats.render()

    def test_dynamic_disable_refolds_safely(self):
        """A protocol that passes the static gate but sends traffic must
        be caught at run time and explored unquotiented."""
        spec = ExploreSpec(
            processes=make_process_ids(3),
            protocol=uniform_protocol(ChattyProcess),
            horizon=4,
            max_failures=1,
            crash_ticks=(1, 2),
        )
        assert symmetric_spec(spec)  # the static gate is fooled
        baseline = explore(spec.with_(reduction="none"), cache=None)
        report = explore(spec.with_(reduction="dpor+symmetry"), cache=None)
        assert not report.stats.symmetry_active
        assert ordered_keys(report) == ordered_keys(baseline)

    def test_mirrored_runs_replay_from_coordinates(self):
        spec = DIFFERENTIAL_SPECS["symmetric-crash-only"].with_(
            reduction="dpor+symmetry"
        )
        report = explore(spec, cache=None)
        mirrored = [r for r in report.runs if r.meta.get("renaming")]
        assert mirrored
        for run in mirrored:
            again = replay(
                spec,
                run.meta["crash_plan"],
                run.meta["trace"],
                renaming=tuple(run.meta["renaming"]),
            )
            assert run_key(again) == run_key(run)
            assert again.meta["renaming"] == run.meta["renaming"]

    def test_run_respects_quotient_flags_traffic(self):
        spec = DIFFERENTIAL_SPECS["symmetric-crash-only"]
        report = explore(spec.with_(reduction="none"), cache=None)
        movable = frozenset(spec.processes)
        # crash-only runs have no traffic at all: every process movable
        assert all(
            run_respects_quotient(run, movable) for run in report.runs
        )
        chatty = explore(
            ExploreSpec(
                processes=make_process_ids(2),
                protocol=uniform_protocol(ChattyProcess),
                horizon=3,
            ),
            cache=None,
        )
        assert not any(
            run_respects_quotient(run, frozenset(["p1", "p2"]))
            for run in chatty.runs
        )


class TestSharding:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_count_invisible_in_results(self, workers):
        spec = DIFFERENTIAL_SPECS["symmetric-crash-only"].with_(
            reduction="dpor"
        )
        serial = explore(spec, cache=None, workers=1)
        sharded = explore(spec, cache=None, workers=workers)
        assert ordered_keys(sharded) == ordered_keys(serial)
        assert sharded.stats.runs_unique == serial.stats.runs_unique
        assert sharded.stats.workers == workers

    def test_budgeted_search_forces_serial(self):
        report = explore(
            spec_of(max_executions=5, reduction="dpor"),
            cache=None,
            workers=4,
        )
        assert report.stats.workers == 1
        assert report.stats.truncated


class TestIncremental:
    def test_extension_matches_fresh_exploration(self, tmp_path):
        spec = DIFFERENTIAL_SPECS["symmetric-crash-only"].with_(
            reduction="dpor"
        )
        cache = RunCache(tmp_path)
        explore(spec.with_(horizon=4), cache=cache)
        extended = explore(spec.with_(horizon=5), cache=cache)
        fresh = explore(spec.with_(horizon=5), cache=None)
        assert ordered_keys(extended) == ordered_keys(fresh)
        assert extended.stats.seeded_from_horizon == 4
        assert (
            extended.stats.fixpoint_leaves_reused
            + extended.stats.executions
            > 0
        )
        # a quiescent fixpoint leaf must not be re-executed
        assert extended.stats.executions < fresh.stats.executions

    def test_lossy_extension_matches_fresh(self, tmp_path):
        spec = DIFFERENTIAL_SPECS["nudc-lossy"].with_(reduction="dpor")
        cache = RunCache(tmp_path)
        explore(spec.with_(horizon=4), cache=cache)
        extended = explore(spec.with_(horizon=5), cache=cache)
        fresh = explore(spec.with_(horizon=5), cache=None)
        assert ordered_keys(extended) == ordered_keys(fresh)

    def test_cache_round_trip_preserves_leaves(self, tmp_path):
        spec = spec_of(reduction="dpor")
        cache = RunCache(tmp_path)
        first = explore(spec, cache=cache)
        # a *fresh* cache object re-reads the v3 entry from disk
        reloaded = RunCache(tmp_path)
        entry = reloaded.get_exploration_entry(spec.digest())
        assert entry is not None and entry.leaves
        for plan, trace, fixpoint, run_index in entry.leaves:
            assert 0 <= run_index < len(entry.runs)
            assert isinstance(fixpoint, bool)
        hit = explore(spec, cache=reloaded)
        assert ordered_keys(hit) == ordered_keys(first)


class TestExplorerFacade:
    def test_from_spec_run_and_replay(self):
        spec = DIFFERENTIAL_SPECS["nudc-lossy"]
        explorer = Explorer.from_spec(
            spec, monitors=(UniformityMonitor(),)
        ).with_(cache=None)
        report = explorer.run()
        assert report.violations
        violation = report.violations[0]
        assert run_key(explorer.replay(violation.run)) == run_key(
            violation.run
        )

    def test_exported_from_top_level(self):
        import repro

        assert repro.Explorer is Explorer
        assert repro.ExploreSpec is ExploreSpec
        assert repro.ReductionConfig is ReductionConfig


class TestDeprecations:
    def test_runtime_import_warns_exactly_once(self):
        import repro.runtime as runtime

        runtime._reset_explore_spec_warning()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = runtime.ExploreSpec
            second = runtime.ExploreSpec
        assert first is ExploreSpec and second is ExploreSpec
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "repro.explore" in str(deprecations[0].message)

    def test_runtime_spec_import_warns_exactly_once(self):
        import repro.runtime.spec as runtime_spec

        runtime_spec._reset_explore_spec_warning()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = runtime_spec.ExploreSpec
            second = runtime_spec.ExploreSpec
        assert first is ExploreSpec and second is ExploreSpec
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1

    def test_unknown_runtime_attribute_still_raises(self):
        import repro.runtime as runtime

        with pytest.raises(AttributeError):
            runtime.NoSuchThing

    def test_legacy_por_kwarg_maps_and_warns(self):
        with pytest.warns(DeprecationWarning, match="por"):
            legacy = spec_of(por=False)
        assert legacy.reduction == "none"
        with pytest.warns(DeprecationWarning, match="por"):
            assert spec_of(por=True).reduction == "dpor"

    def test_legacy_fingerprints_kwarg_ignored_with_warning(self):
        with pytest.warns(DeprecationWarning, match="fingerprint"):
            legacy = spec_of(fingerprints=True)
        assert legacy.reduction == "dpor"

    def test_with_accepts_legacy_kwargs(self):
        spec = spec_of()
        with pytest.warns(DeprecationWarning):
            assert spec.with_(por=False).reduction == "none"


class TestSerialization:
    def test_renaming_meta_survives_json_round_trip(self):
        from repro.model.serialize import run_from_dict, run_to_dict

        spec = DIFFERENTIAL_SPECS["symmetric-crash-only"].with_(
            reduction="dpor+symmetry"
        )
        report = explore(spec, cache=None)
        mirrored = next(
            r for r in report.runs if r.meta.get("renaming")
        )
        again = run_from_dict(run_to_dict(mirrored))
        assert again.meta["renaming"] == mirrored.meta["renaming"]
        assert tuple(again.meta["trace"]) == tuple(mirrored.meta["trace"])
