"""Unit tests for the formula AST: locality and stability bookkeeping."""

from repro.knowledge.formulas import (
    FALSE,
    TRUE,
    And,
    Atom,
    Box,
    Crashed,
    Diamond,
    Did,
    Iff,
    Implies,
    Inited,
    Knows,
    Not,
    Or,
    Received,
    Sent,
)


class TestPrimitives:
    def test_event_primitives_are_local_and_stable(self):
        for formula, owner in [
            (Inited("p1", "a"), "p1"),
            (Did("p2", "a"), "p2"),
            (Crashed("p3"), "p3"),
            (Sent("p1", "p2"), "p1"),
            (Received("p2", "p1"), "p2"),
        ]:
            assert formula.locality == owner
            assert formula.syntactically_stable

    def test_constants(self):
        assert TRUE.value and not FALSE.value
        assert TRUE.syntactically_stable
        assert not FALSE.syntactically_stable

    def test_atom_declarations_respected(self):
        a = Atom("x", lambda pt: True, locality="p1", stable=True)
        assert a.locality == "p1"
        assert a.syntactically_stable
        b = Atom("y", lambda pt: True)
        assert b.locality is None
        assert not b.syntactically_stable


class TestConnectives:
    def test_negation_keeps_locality_drops_stability(self):
        f = Not(Crashed("p1"))
        assert f.locality == "p1"
        assert not f.syntactically_stable

    def test_conjunction_locality_shared(self):
        same = And(Crashed("p1"), Inited("p1", "a"))
        assert same.locality == "p1"
        mixed = And(Crashed("p1"), Crashed("p2"))
        assert mixed.locality is None

    def test_conjunction_stability(self):
        assert And(Crashed("p1"), Inited("p1", "a")).syntactically_stable
        assert not And(Crashed("p1"), Not(Crashed("p2"))).syntactically_stable

    def test_and_or_flatten(self):
        f = And(And(Crashed("p1"), Crashed("p2")), Crashed("p3"))
        assert len(f.parts) == 3
        g = Or(Or(Crashed("p1"), Crashed("p2")), Crashed("p3"))
        assert len(g.parts) == 3

    def test_operator_sugar(self):
        f = Crashed("p1") & Crashed("p2")
        assert isinstance(f, And)
        g = Crashed("p1") | Crashed("p2")
        assert isinstance(g, Or)
        h = ~Crashed("p1")
        assert isinstance(h, Not)
        i = Crashed("p1").implies(Crashed("p2"))
        assert isinstance(i, Implies)

    def test_iff_expansion(self):
        f = Iff(Crashed("p1"), Crashed("p2"))
        assert isinstance(f, And)
        assert len(f.parts) == 2


class TestTemporalAndEpistemic:
    def test_box_is_stable_not_local(self):
        f = Box(Crashed("p1"))
        assert f.syntactically_stable
        assert f.locality is None

    def test_diamond_is_neither(self):
        f = Diamond(Crashed("p1"))
        assert not f.syntactically_stable
        assert f.locality is None

    def test_knows_local_to_knower(self):
        f = Knows("p2", Crashed("p1"))
        assert f.locality == "p2"

    def test_knowledge_of_stable_local_fact_is_stable(self):
        assert Knows("p2", Crashed("p1")).syntactically_stable
        assert not Knows("p2", Not(Crashed("p1"))).syntactically_stable

    def test_labels_render(self):
        f = Implies(
            Knows("p2", Inited("p1", "a")),
            Diamond(Or(Did("p2", "a"), Crashed("p2"))),
        )
        text = f.label()
        assert "K_p2" in text and "<>" in text and "do_p2" in text
