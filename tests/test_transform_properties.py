"""Property-based invariants of the run transformations and conversions:
for arbitrary adversaries, every transformation is a Section 2.2
conversion -- non-detector events preserved in order, derived reports
well-placed, R4 respected."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocols import StrongFDUDCProcess
from repro.core.simulation_theorem import (
    subset_order,
    transform_run_f,
    transform_run_f_prime,
)
from repro.detectors.conversions import (
    convert_impermanent_to_permanent,
    convert_perfect_to_n_useful,
)
from repro.detectors.standard import ImpermanentStrongOracle, PerfectOracle
from repro.model.context import make_process_ids
from repro.model.events import SuspectEvent
from repro.model.run import validate_run
from repro.model.system import System
from repro.sim.executor import Executor
from repro.sim.failures import sample_crash_plan
from repro.sim.process import uniform_protocol
from repro.workloads.generators import single_action

PROCS = make_process_ids(3)


def fuzz_run(seed: int, oracle=None):
    rng = random.Random(seed)
    plan = sample_crash_plan(rng, PROCS, crash_prob=0.4, horizon=15)
    return Executor(
        PROCS,
        uniform_protocol(StrongFDUDCProcess),
        crash_plan=plan,
        workload=single_action("p1", tick=1),
        detector=oracle or PerfectOracle(),
        seed=rng.randrange(1 << 16),
    ).run()


def non_fd_events(run, p):
    return [e for e in run.events(p) if not isinstance(e, SuspectEvent)]


TRANSFORMS = {
    "f": lambda run: transform_run_f(run, System([run])),
    "f_prime": lambda run: transform_run_f_prime(run, System([run])),
    "imp_to_perm": convert_impermanent_to_permanent,
    "perfect_to_n_useful": convert_perfect_to_n_useful,
}


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 10**5), st.sampled_from(sorted(TRANSFORMS)))
def test_non_detector_events_preserved_in_order(seed, name):
    run = fuzz_run(seed)
    out = TRANSFORMS[name](run)
    for p in PROCS:
        assert non_fd_events(out, p) == non_fd_events(run, p)


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 10**5), st.sampled_from(sorted(TRANSFORMS)))
def test_transformed_runs_are_wellformed(seed, name):
    run = fuzz_run(seed)
    out = TRANSFORMS[name](run)
    # R1-R4 + init uniqueness (R5's finite heuristic doesn't apply to
    # the doubled timeline).
    validate_run(out, check_r5=False)


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 10**5), st.sampled_from(sorted(TRANSFORMS)))
def test_derived_reports_odd_originals_even(seed, name):
    run = fuzz_run(seed, oracle=ImpermanentStrongOracle())
    out = TRANSFORMS[name](run)
    for p in PROCS:
        for t, e in out.timeline(p):
            if isinstance(e, SuspectEvent) and e.derived:
                assert t % 2 == 1
            elif not isinstance(e, SuspectEvent):
                assert t % 2 == 0


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 10**5), st.sampled_from(sorted(TRANSFORMS)))
def test_failure_pattern_preserved(seed, name):
    run = fuzz_run(seed)
    out = TRANSFORMS[name](run)
    assert out.faulty() == run.faulty()
    for q in run.faulty():
        assert out.crash_time(q) == 2 * run.crash_time(q)


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 10**5))
def test_duration_doubles(seed):
    run = fuzz_run(seed)
    for name, fn in TRANSFORMS.items():
        assert fn(run).duration == 2 * run.duration + 1, name


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 6))
def test_subset_order_is_a_bijection(n):
    procs = make_process_ids(n)
    order = subset_order(procs)
    assert len(order) == 2**n
    assert len(set(order)) == 2**n
    assert order[0] == frozenset()
    assert order[-1] == frozenset(procs)


@settings(max_examples=12, deadline=None)
@given(st.integers(0, 10**5))
def test_transformations_deterministic(seed):
    run = fuzz_run(seed)
    system = System([run])
    assert transform_run_f(run, system) == transform_run_f(run, system)
    assert transform_run_f_prime(run, system) == transform_run_f_prime(
        run, system
    )
