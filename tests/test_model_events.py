"""Unit tests for the event alphabet."""

import pytest

from repro.model.events import (
    CrashEvent,
    DoEvent,
    GeneralizedSuspicion,
    InitEvent,
    Message,
    ReceiveEvent,
    SendEvent,
    StandardSuspicion,
    SuspectEvent,
    event_process,
)


class TestMessage:
    def test_equality_by_value(self):
        assert Message("alpha", ("p1", "a")) == Message("alpha", ("p1", "a"))

    def test_inequality_on_kind(self):
        assert Message("alpha", 1) != Message("ack", 1)

    def test_hashable(self):
        assert len({Message("x"), Message("x"), Message("y")}) == 2

    def test_default_payload_is_none(self):
        assert Message("hb").payload is None


class TestEventOwnership:
    def test_send_belongs_to_sender(self):
        e = SendEvent("p1", "p2", Message("m"))
        assert event_process(e) == "p1"

    def test_receive_belongs_to_receiver(self):
        e = ReceiveEvent("p2", "p1", Message("m"))
        assert event_process(e) == "p2"

    def test_do_init_crash_belong_to_process(self):
        assert event_process(DoEvent("p3", "a")) == "p3"
        assert event_process(InitEvent("p3", "a")) == "p3"
        assert event_process(CrashEvent("p3")) == "p3"

    def test_suspect_belongs_to_process(self):
        e = SuspectEvent("p1", StandardSuspicion(frozenset({"p2"})))
        assert event_process(e) == "p1"


class TestSuspicions:
    def test_standard_suspicion_coerces_to_frozenset(self):
        s = StandardSuspicion({"p1", "p2"})
        assert isinstance(s.suspects, frozenset)

    def test_standard_suspicion_equality(self):
        assert StandardSuspicion(frozenset({"p1"})) == StandardSuspicion({"p1"})

    def test_generalized_requires_k_at_most_size(self):
        with pytest.raises(ValueError):
            GeneralizedSuspicion(frozenset({"p1"}), 2)

    def test_generalized_requires_nonnegative_k(self):
        with pytest.raises(ValueError):
            GeneralizedSuspicion(frozenset({"p1"}), -1)

    def test_generalized_k_zero_allowed(self):
        # The trivial (S, 0) reports of the Gopal-Toueg construction.
        s = GeneralizedSuspicion(frozenset({"p1", "p2"}), 0)
        assert s.count == 0

    def test_generalized_k_equal_size_allowed(self):
        s = GeneralizedSuspicion(frozenset({"p1", "p2"}), 2)
        assert s.count == 2

    def test_suspect_event_derived_flag_default_false(self):
        e = SuspectEvent("p1", StandardSuspicion(frozenset()))
        assert e.derived is False

    def test_derived_and_original_events_differ(self):
        report = StandardSuspicion(frozenset({"p2"}))
        assert SuspectEvent("p1", report, derived=True) != SuspectEvent("p1", report)


class TestImmutability:
    def test_events_are_frozen(self):
        e = DoEvent("p1", "a")
        with pytest.raises(AttributeError):
            e.action = "b"

    def test_events_are_hashable(self):
        events = {
            SendEvent("p1", "p2", Message("m")),
            ReceiveEvent("p2", "p1", Message("m")),
            DoEvent("p1", "a"),
            InitEvent("p1", "a"),
            CrashEvent("p1"),
            SuspectEvent("p1", StandardSuspicion(frozenset())),
        }
        assert len(events) == 6
