"""Smoke tests: every example script runs clean and prints its headline."""

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "DC1: holds" in out
    assert "DC2: holds" in out
    assert "DC3: holds" in out


def test_replicated_service():
    out = run_example("replicated_service.py")
    assert "UDC across all commands: holds" in out
    assert "every correct replica applied the same SET of commands: True" in out


def test_uniform_reliable_broadcast():
    out = run_example("uniform_reliable_broadcast.py")
    assert "integrity: every delivery unique and matches a broadcast" in out
    assert "UDC (= URB) verdict: holds" in out


def test_knowledge_analysis():
    out = run_example("knowledge_analysis.py")
    assert "UDC holds in every run: True" in out
    assert "perfect-detector verdicts: 30/30" in out


def test_total_order_ledger():
    out = run_example("total_order_ledger.py")
    assert "[UDC]  every replica applied the same set: True" in out
    assert "atomic broadcast: agreed" in out


def test_failure_detector_zoo():
    out = run_example("failure_detector_zoo.py")
    # The hierarchy's key shape facts, as printed rows.
    assert "perfect" in out and "readings:" in out
    for line in out.splitlines():
        if line.startswith("perfect"):
            assert "FAILS" not in line
        if line.startswith("none"):
            assert "FAILS" in line


def test_exhaustive_udc_check():
    out = run_example("exhaustive_udc_check.py")
    assert "50 runs [complete]" in out
    assert "UDC violations found: 2" in out
    assert "nUDC violations found: 0" in out
    # Under drop elision the witness defers both alpha-copies at every
    # delivery choice point instead of taking explicit drop branches.
    assert "minimal witness: crashes={'p1': 5} trace=(1, 1, 1, 1, 1)" in out
    assert "kernel input: 50 runs, complete=True" in out
    assert "no survivor ever knows the crash: True" in out


def test_archive_and_report():
    out = run_example("archive_and_report.py")
    assert "reloaded: runs identical" in out
    assert "30/30 runs yield perfect derived detectors" in out
    assert "2/2 experiments passed" in out
