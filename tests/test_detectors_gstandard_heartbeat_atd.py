"""Tests for g-standard wrappers, the heartbeat detector, and the ATD oracle."""

import pytest

from repro.core.protocols import NUDCProcess, StrongFDUDCProcess
from repro.detectors.atd import AtdRotatingOracle
from repro.detectors.gstandard import (
    CorrectReport,
    GStandardOracle,
    complement_gstandard,
    g_complement,
    g_suspects_at,
)
from repro.detectors.heartbeat import (
    HEARTBEAT,
    derive_heartbeat_suspicions,
    with_heartbeats,
)
from repro.detectors.properties import (
    atd_accuracy,
    strong_accuracy,
    strong_completeness,
    weak_accuracy,
)
from repro.detectors.standard import PerfectOracle
from repro.model.context import make_process_ids
from repro.model.events import Message, StandardSuspicion, SuspectEvent
from repro.sim.executor import ExecutionConfig, Executor
from repro.sim.failures import CrashPlan
from repro.sim.network import ChannelConfig
from repro.sim.process import uniform_protocol
from repro.workloads.generators import post_crash_workload, single_action

PROCS = make_process_ids(4)


class TestGStandard:
    def test_complement_mapping(self):
        report = CorrectReport(frozenset({"p1", "p2"}), frozenset(PROCS))
        assert g_complement(report) == frozenset({"p3", "p4"})

    def test_wrapped_oracle_properties_transfer(self):
        plan = CrashPlan.of({"p3": 5})
        run = Executor(
            PROCS,
            uniform_protocol(StrongFDUDCProcess),
            crash_plan=plan,
            workload=single_action("p1", tick=1),
            detector=complement_gstandard(PerfectOracle()),
            seed=0,
        ).run()
        # The g-image reports are recorded as standard suspicions, so
        # the untouched checkers apply (the paper: "all of our results
        # apply to g-standard failure detectors as well").
        assert strong_accuracy(run)
        assert strong_completeness(run)

    def test_wrapped_equals_unwrapped(self):
        plan = CrashPlan.of({"p3": 5})

        def execute(detector):
            return Executor(
                PROCS,
                uniform_protocol(StrongFDUDCProcess),
                crash_plan=plan,
                workload=single_action("p1", tick=1),
                detector=detector,
                seed=1,
            ).run()

        assert execute(PerfectOracle()) == execute(
            complement_gstandard(PerfectOracle())
        )

    def test_bad_g_mapping_rejected(self):
        bad = GStandardOracle(
            PerfectOracle(),
            encode=lambda suspects, procs: suspects,
            g=lambda raw: frozenset(),  # not the inverse
        )
        plan = CrashPlan.of({"p3": 2})
        with pytest.raises(ValueError, match="identity"):
            Executor(
                PROCS,
                uniform_protocol(StrongFDUDCProcess),
                crash_plan=plan,
                workload=single_action("p1", tick=1),
                detector=bad,
                seed=0,
            ).run()

    def test_g_suspects_at(self):
        from repro.model.history import History

        h = History(
            [SuspectEvent("p1", StandardSuspicion(frozenset({"p2"})))]
        )
        assert g_suspects_at(h, g_complement) == frozenset({"p2"})
        assert g_suspects_at(History(), g_complement) == frozenset()


class TestHeartbeat:
    def heartbeat_run(self, plan=CrashPlan.none(), seed=0, beat_count=12):
        return Executor(
            PROCS,
            with_heartbeats(beat_count=beat_count),
            crash_plan=plan,
            seed=seed,
        ).run()

    def test_beacons_flow_and_are_bounded(self):
        from repro.model.events import SendEvent

        run = self.heartbeat_run()
        sends = [
            e
            for e in run.events("p1")
            if isinstance(e, SendEvent) and e.message.kind == HEARTBEAT
        ]
        assert 0 < len(sends) <= 12 * (len(PROCS) - 1)
        assert not run.meta["hit_tick_cap"]

    def test_derived_completeness_for_crashed(self):
        run = self.heartbeat_run(plan=CrashPlan.of({"p3": 20}))
        out = derive_heartbeat_suspicions(run, timeout=14)
        # Within the beacon phase, every live process eventually stops
        # hearing from p3 and suspects it in its final report.
        for p in sorted(out.correct()):
            latest = out.final_history(p).latest_suspicion(derived=True)
            assert latest is not None
            assert "p3" in latest.report.suspects

    def test_false_suspicions_retract(self):
        # Message-based detection cannot be perpetually accurate: with a
        # slow channel a live process may be suspected -- but once its
        # beacon lands the suspicion is withdrawn.
        config = ExecutionConfig(
            channel=ChannelConfig(drop_prob=0.7, max_consecutive_drops=4)
        )
        found_retraction = False
        for seed in range(6):
            run = Executor(
                PROCS, with_heartbeats(beat_count=15), config=config, seed=seed
            ).run()
            out = derive_heartbeat_suspicions(run, timeout=10)
            for p in PROCS:
                reports = [
                    e.report.suspects
                    for _, e in out.timeline(p)
                    if isinstance(e, SuspectEvent) and e.derived
                ]
                for earlier, later in zip(reports, reports[1:]):
                    if earlier - later:
                        found_retraction = True
        assert found_retraction

    def test_wrapper_composes_with_inner_protocol(self):
        run = Executor(
            PROCS,
            with_heartbeats(uniform_protocol(NUDCProcess), beat_count=6),
            workload=single_action("p1", tick=1),
            seed=0,
        ).run()
        from repro.core.properties import nudc_holds

        assert nudc_holds(run)


class TestAtdOracle:
    def atd_run(self, plan, seed=0):
        from repro.core.protocols import AtdUDCProcess

        workload = single_action("p1", tick=1) + post_crash_workload(
            PROCS, plan, actions_per_survivor=1
        )
        return Executor(
            PROCS,
            uniform_protocol(AtdUDCProcess),
            crash_plan=plan,
            workload=workload,
            detector=AtdRotatingOracle(rotation_period=10),
            seed=seed,
        ).run()

    def test_atd_accuracy_holds(self):
        for seed in range(3):
            run = self.atd_run(CrashPlan.of({"p4": 6}), seed)
            assert atd_accuracy(run)

    def test_strong_completeness_holds(self):
        run = self.atd_run(CrashPlan.of({"p4": 6}))
        assert strong_completeness(run)

    def test_weak_accuracy_violated_in_failure_free_run(self):
        run = self.atd_run(CrashPlan.none())
        assert not weak_accuracy(run)

    def test_rotation_freezes(self):
        oracle = AtdRotatingOracle(rotation_period=5, stop_after_windows=2)
        run = Executor(
            PROCS,
            uniform_protocol(StrongFDUDCProcess),
            workload=single_action("p1", tick=1),
            detector=oracle,
            seed=0,
        ).run()
        assert not run.meta["hit_tick_cap"]

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            AtdRotatingOracle(rotation_period=0)
