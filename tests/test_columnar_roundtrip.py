"""Round-trip tests for the columnar run arena (encode/decode, JSON, shm).

The arena's contract is *losslessness*: ``decode_runs(encode_runs(rs))``
gives back value-equal runs (same hashes, timelines, durations, metas),
through every representation the arena travels in -- in-memory buffers,
the v4 cache's JSON form, and the shared-memory transfer header.  The
hypothesis property drives randomized batches through all three; the
explicit tests pin the edge cases (crashes, empty batches, events past
the duration, mixed process tuples) and buffer immutability.

Every test runs twice: once with whatever buffer backend is available,
once with ``REPRO_COLUMNAR_NUMPY=0`` forcing the stdlib ``array``
fallback, which is what the no-numpy CI leg exercises.
"""

from __future__ import annotations

import json
import os
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import (
    RunArena,
    decode_runs,
    encode_runs,
    numpy_or_none,
    receive_runs,
    ship_runs,
)
from repro.columnar.jsonio import arena_from_jsonable, arena_to_jsonable
from repro.columnar.transfer import header_bytes
from repro.model.context import make_process_ids
from repro.model.events import CrashEvent, DoEvent
from repro.model.run import Run
from repro.model.synthetic import synthetic_run

BACKENDS = ["default", "no-numpy"]


@pytest.fixture(params=BACKENDS)
def backend(request, monkeypatch):
    """Run the test under each buffer backend the build supports."""
    if request.param == "no-numpy":
        monkeypatch.setenv("REPRO_COLUMNAR_NUMPY", "0")
    else:
        monkeypatch.delenv("REPRO_COLUMNAR_NUMPY", raising=False)
    return request.param


def make_batch(
    n: int,
    n_runs: int,
    seed: int,
    *,
    duration: int = 6,
    crash_prob: float = 0.4,
) -> tuple[Run, ...]:
    rng = random.Random(seed)
    procs = make_process_ids(n)
    return tuple(
        synthetic_run(procs, rng, duration=duration, crash_prob=crash_prob)
        for _ in range(n_runs)
    )


def assert_lossless(original: tuple[Run, ...], rebuilt: tuple[Run, ...]) -> None:
    assert rebuilt == original
    for a, b in zip(original, rebuilt):
        assert hash(a) == hash(b)
        assert a.duration == b.duration
        assert a.meta == b.meta
        for p in a.processes:
            assert tuple(a.timeline(p)) == tuple(b.timeline(p))


# -- hypothesis property: encode/decode through every representation ------


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=4),
    n_runs=st.integers(min_value=0, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
    duration=st.integers(min_value=1, max_value=8),
    crash_prob=st.sampled_from([0.0, 0.3, 0.8]),
    use_numpy=st.booleans(),
)
def test_roundtrip_property(n, n_runs, seed, duration, crash_prob, use_numpy):
    prior = os.environ.get("REPRO_COLUMNAR_NUMPY")
    os.environ["REPRO_COLUMNAR_NUMPY"] = "1" if use_numpy else "0"
    try:
        procs = make_process_ids(n)
        runs = make_batch(n, n_runs, seed, duration=duration, crash_prob=crash_prob)
        arena = encode_runs(runs, processes=procs)
        assert arena.n_runs == len(runs)
        assert_lossless(runs, decode_runs(arena))
        # ... and through the JSON form used by v4 cache entries.
        wire = json.loads(json.dumps(arena_to_jsonable(arena)))
        assert_lossless(runs, decode_runs(arena_from_jsonable(wire)))
    finally:
        if prior is None:
            os.environ.pop("REPRO_COLUMNAR_NUMPY", None)
        else:
            os.environ["REPRO_COLUMNAR_NUMPY"] = prior


# -- explicit edge cases ---------------------------------------------------


def test_crashed_runs_preserve_crash_structure(backend):
    runs = make_batch(3, 8, seed=5, crash_prob=0.9)
    rebuilt = decode_runs(encode_runs(runs))
    assert any(r.faulty() for r in runs), "fixture should contain crashes"
    for a, b in zip(runs, rebuilt):
        assert a.faulty() == b.faulty()
        for p in a.processes:
            for t in range(a.duration + 1):
                assert a.crashed_by(p, t) == b.crashed_by(p, t)


def test_event_past_duration_roundtrips(backend):
    """The kernel clamps to the duration; the arena must not -- events
    past the horizon are part of the run's value and survive encoding."""
    procs = make_process_ids(2)
    run = Run(
        procs,
        {
            "p1": [(1, DoEvent("p1", ("p1", "a"))), (9, DoEvent("p1", ("p1", "late")))],
            "p2": [(10, CrashEvent("p2"))],
        },
        duration=4,
    )
    (rebuilt,) = decode_runs(encode_runs([run]))
    assert rebuilt == run
    assert tuple(rebuilt.timeline("p1")) == tuple(run.timeline("p1"))
    assert tuple(rebuilt.timeline("p2")) == tuple(run.timeline("p2"))


def test_empty_batch_needs_explicit_processes(backend):
    procs = make_process_ids(3)
    arena = encode_runs((), processes=procs)
    assert arena.n_runs == 0 and arena.processes == procs
    assert decode_runs(arena) == ()
    with pytest.raises(ValueError, match="empty batch"):
        encode_runs(())


def test_mixed_process_tuples_rejected(backend):
    a = make_batch(2, 1, seed=0)[0]
    b = make_batch(3, 1, seed=0)[0]
    with pytest.raises(ValueError, match="share a process set"):
        encode_runs([a, b])


def test_missing_run_timelines_default_empty(backend):
    """A run constructed without a timeline for some process encodes as
    an empty CSR row and decodes back to the same empty timeline."""
    procs = make_process_ids(3)
    run = Run(procs, {"p1": [(1, DoEvent("p1", ("p1", "x")))]}, duration=3)
    (rebuilt,) = decode_runs(encode_runs([run]))
    assert rebuilt == run
    assert tuple(rebuilt.timeline("p2")) == ()
    assert tuple(rebuilt.timeline("p3")) == ()


def test_metas_carried_by_value(backend):
    runs = tuple(
        Run(
            make_process_ids(2),
            {"p1": [(1, DoEvent("p1", ("p1", "a")))]},
            duration=2,
            meta={"seed": i, "note": f"r{i}"},
        )
        for i in range(3)
    )
    arena = encode_runs(runs)
    rebuilt = decode_runs(arena)
    for a, b in zip(runs, rebuilt):
        assert b.meta == a.meta
        assert b.meta is not a.meta  # decoded metas are private copies


def test_buffers_are_frozen(backend):
    arena = encode_runs(make_batch(3, 4, seed=2))
    np = numpy_or_none()
    if np is None:
        pytest.skip("stdlib buffers rely on INV004 (static) for immutability")
    for name in ("run_durations", "tl_offsets", "tl_times", "tl_events"):
        buf = getattr(arena, name)
        assert not buf.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            buf[0] = 99  # repro: lint-ok[INV004] proving the freeze, not relying on it


def test_jsonable_rejects_unknown_format(backend):
    arena = encode_runs(make_batch(2, 2, seed=1))
    data = arena_to_jsonable(arena)
    data["format"] = "repro-arena-v999"
    with pytest.raises(ValueError, match="unsupported arena format"):
        arena_from_jsonable(data)


def test_shared_memory_transfer_roundtrip(backend):
    runs = make_batch(3, 10, seed=9)
    shipped = ship_runs(runs)
    try:
        received = receive_runs(shipped)
    except Exception:  # pragma: no cover - /dev/shm-less environments
        pytest.skip("shared memory unavailable")
    assert_lossless(runs, received)
    # The header is what crosses the pickled result pipe; it must stay
    # tiny relative to pickling the run objects themselves.
    import pickle

    assert header_bytes(shipped) < len(pickle.dumps(runs))


def test_alphabet_interns_each_event_once(backend):
    runs = make_batch(3, 12, seed=4)
    arena = encode_runs(runs)
    assert len(set(arena.events)) == len(arena.events)
    seen = {e for r in runs for p in r.processes for _, e in r.timeline(p)}
    assert set(arena.events) == seen


def test_arena_repr_and_nbytes(backend):
    arena = encode_runs(make_batch(2, 3, seed=0))
    assert isinstance(arena, RunArena)
    assert arena.nbytes > 0
