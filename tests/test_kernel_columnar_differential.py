"""Three-way differential tests: naive reference vs class kernel vs
columnar kernel.

PR acceptance pins *bit-identical* answers from all three evaluation
strategies -- the retained point-scanning reference
(:mod:`repro.knowledge.reference`), the PR-2 equivalence-class kernel
(``System(kernel="class")``), and the struct-of-arrays kernel
(``System(kernel="columnar")``) -- over the primitives (Knows,
indistinguishability), the E^k ladder, and the C_G fixpoint.  The
columnar leg runs under both buffer backends (numpy and the stdlib
``array`` fallback), and once more on runs that made a round trip
through the shared-memory transfer path.
"""

from __future__ import annotations

import pytest

from repro.columnar import receive_runs, ship_runs
from repro.knowledge import Crashed, GroupChecker, ModelChecker, Not
from repro.knowledge.group import e_iterated
from repro.knowledge.reference import (
    naive_common_knowledge_points,
    naive_indistinguishable_points,
    naive_known_crashed_set,
    naive_knows_crashed,
    naive_max_e_depth,
)
from repro.model.run import Point
from repro.model.synthetic import synthetic_system
from repro.model.system import System

CASES = [
    # (n processes, runs, seed, duration)
    (2, 4, 0, 5),
    (3, 6, 1, 6),
    (4, 6, 3, 6),
]

BACKENDS = ["numpy", "no-numpy"]


class Kernels:
    """One run set, indexed by all three evaluation strategies."""

    def __init__(self, case, backend, monkeypatch):
        if backend == "no-numpy":
            monkeypatch.setenv("REPRO_COLUMNAR_NUMPY", "0")
        else:
            monkeypatch.delenv("REPRO_COLUMNAR_NUMPY", raising=False)
        n, runs, seed, duration = case
        base = synthetic_system(n, runs, seed=seed, duration=duration)
        self.runs = base.runs
        self.class_system = System(self.runs, kernel="class")
        self.columnar_system = System(self.runs, kernel="columnar")
        self.columnar_system.build_index()

    @property
    def systems(self):
        return (self.class_system, self.columnar_system)


@pytest.fixture(
    params=[(c, b) for c in CASES for b in BACKENDS],
    ids=lambda p: f"n{p[0][0]}r{p[0][1]}s{p[0][2]}-{p[1]}",
)
def kernels(request, monkeypatch):
    case, backend = request.param
    return Kernels(case, backend, monkeypatch)


def test_indistinguishable_points_three_way(kernels):
    for system in kernels.systems:
        for p in system.processes:
            for pt in system.points():
                naive = naive_indistinguishable_points(system, p, pt)
                assert list(system.indistinguishable_points(p, pt)) == naive


def test_knows_crashed_three_way(kernels):
    cls, col = kernels.systems
    for p in cls.processes:
        for pt in cls.points():
            for q in cls.processes:
                expected = naive_knows_crashed(cls, p, pt, q)
                assert cls.knows_crashed(p, pt, q) == expected
                assert col.knows_crashed(p, pt, q) == expected


def test_known_crashed_set_three_way(kernels):
    cls, col = kernels.systems
    for p in cls.processes:
        for pt in cls.points():
            expected = naive_known_crashed_set(cls, p, pt)
            assert cls.known_crashed_set(p, pt) == expected
            assert col.known_crashed_set(p, pt) == expected


def _naive_e_level_sets(system, group, victim, depth):
    """E^k level sets by pure point scanning (no kernel, no bitsets).

    S_0 is the truth set of Crashed(victim); S_{k+1} keeps the points
    whose every ~_p candidate (for every p in the group) lies in S_k.
    """
    points = list(system.points())
    levels = [
        {pt for pt in points if pt.run.crashed_by(victim, pt.time)}
    ]
    for _ in range(depth):
        prev = levels[-1]
        levels.append(
            {
                pt
                for pt in points
                if all(
                    all(
                        cand in prev
                        for cand in naive_indistinguishable_points(system, p, pt)
                    )
                    for p in group
                )
            }
        )
    return levels


def test_e_level_sets_three_way(kernels):
    cls, col = kernels.systems
    group = tuple(cls.processes)
    victim = cls.processes[-1]
    depth = 3
    levels = _naive_e_level_sets(cls, group, victim, depth)
    mc_cls, mc_col = ModelChecker(cls), ModelChecker(col)
    for k in range(depth + 1):
        phi_k = e_iterated(group, Crashed(victim), k)
        for pt in cls.points():
            expected = pt in levels[k]
            assert mc_cls.holds(phi_k, pt) == expected, (k, pt.time)
            assert mc_col.holds(phi_k, pt) == expected, (k, pt.time)


def test_common_knowledge_points_three_way(kernels):
    cls, col = kernels.systems
    victim = cls.processes[-1]
    groups = [tuple(cls.processes), tuple(cls.processes[:2])]
    mc_cls, mc_col = ModelChecker(cls), ModelChecker(col)
    gc_cls, gc_col = GroupChecker(mc_cls), GroupChecker(mc_col)
    for phi in (Crashed(victim), Not(Crashed(victim))):
        for group in groups:
            expected = naive_common_knowledge_points(mc_cls, group, phi)
            assert gc_cls.common_knowledge_points(group, phi) == expected
            assert gc_col.common_knowledge_points(group, phi) == expected


def test_max_e_depth_three_way(kernels):
    cls, col = kernels.systems
    victim = cls.processes[-1]
    group = tuple(cls.processes)
    phi = Crashed(victim)
    mc_cls, mc_col = ModelChecker(cls), ModelChecker(col)
    gc_cls, gc_col = GroupChecker(mc_cls), GroupChecker(mc_col)
    for run in cls.runs[:3]:
        for m in (0, run.duration // 2, run.duration):
            pt = Point(run, m)
            expected = naive_max_e_depth(mc_cls, group, phi, pt, cap=4)
            assert gc_cls.max_e_depth(group, phi, pt, cap=4) == expected
            assert gc_col.max_e_depth(group, phi, pt, cap=4) == expected


def test_foreign_points_agree(kernels):
    """A point whose run is outside the system has no candidates, so
    Knows is vacuously true -- identically in all three strategies."""
    cls, col = kernels.systems
    foreign = synthetic_system(len(cls.processes), 2, seed=777).runs
    for run in foreign:
        if run in cls.runs:  # pragma: no cover - seed collision guard
            continue
        pt = Point(run, 0)
        for p in cls.processes:
            for q in cls.processes:
                expected = naive_knows_crashed(cls, p, pt, q)
                assert cls.knows_crashed(p, pt, q) == expected
                assert col.knows_crashed(p, pt, q) == expected


def test_transfer_roundtrip_preserves_answers(kernels):
    """Runs received over the shared-memory path index into a columnar
    system that answers identically to the original."""
    try:
        received = receive_runs(ship_runs(kernels.runs))
    except Exception:  # pragma: no cover - /dev/shm-less environments
        pytest.skip("shared memory unavailable")
    assert received == kernels.runs
    shipped_system = System(received, kernel="columnar")
    cls = kernels.class_system
    victim = cls.processes[-1]
    group = tuple(cls.processes)
    for p in cls.processes:
        for pt in shipped_system.points():
            for q in cls.processes:
                assert shipped_system.knows_crashed(p, pt, q) == cls.knows_crashed(
                    p, Point(cls.runs[cls.run_index(pt.run)], pt.time), q
                )
    gc_orig = GroupChecker(ModelChecker(cls))
    gc_ship = GroupChecker(ModelChecker(shipped_system))
    phi = Crashed(victim)
    assert gc_ship.common_knowledge_points(group, phi) == (
        gc_orig.common_knowledge_points(group, phi)
    )


def test_kernel_choice_is_visible(kernels):
    assert kernels.class_system.kernel == "class"
    assert kernels.columnar_system.kernel == "columnar"
    assert kernels.class_system.columnar_kernel() is None
    assert kernels.columnar_system.columnar_kernel() is not None
