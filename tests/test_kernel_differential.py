"""Differential tests: class-based kernel vs the naive point-scanning
reference (:mod:`repro.knowledge.reference`) on randomized small systems.

Every knowledge primitive and both group-knowledge fixpoints must agree
point-for-point with the retained naive implementation; this is what
pins the fast path's semantics while the representation underneath it
changes.
"""

import pytest

from repro.knowledge import Crashed, GroupChecker, Knows, ModelChecker, Not
from repro.knowledge.reference import (
    naive_common_knowledge_points,
    naive_indistinguishable_points,
    naive_known_crash_count,
    naive_known_crashed_set,
    naive_knows,
    naive_knows_crashed,
    naive_max_e_depth,
)
from repro.model.synthetic import synthetic_system

CASES = [
    # (n processes, runs, seed, duration)
    (2, 4, 0, 5),
    (3, 6, 1, 6),
    (3, 6, 2, 6),
    (4, 8, 3, 6),
    (4, 8, 4, 8),
    (5, 6, 5, 6),
]


def make_system(case):
    n, runs, seed, duration = case
    return synthetic_system(n, runs, seed=seed, duration=duration)


@pytest.fixture(params=CASES, ids=lambda c: f"n{c[0]}r{c[1]}s{c[2]}")
def system(request):
    return make_system(request.param)


def test_indistinguishable_points_match(system):
    for p in system.processes:
        for pt in system.points():
            fast = list(system.indistinguishable_points(p, pt))
            naive = naive_indistinguishable_points(system, p, pt)
            assert fast == naive


def test_knows_crashed_matches(system):
    for p in system.processes:
        for pt in system.points():
            for q in system.processes:
                assert system.knows_crashed(p, pt, q) == naive_knows_crashed(
                    system, p, pt, q
                ), (p, pt.time, q)


def test_known_crashed_set_matches(system):
    for p in system.processes:
        for pt in system.points():
            assert system.known_crashed_set(p, pt) == naive_known_crashed_set(
                system, p, pt
            )


def test_known_crash_count_matches(system):
    procs = system.processes
    subsets = [
        frozenset(procs),
        frozenset(procs[:1]),
        frozenset(procs[1:]),
        frozenset(procs[::2]),
    ]
    for p in procs:
        for pt in system.points():
            for subset in subsets:
                assert system.known_crash_count(p, pt, subset) == naive_known_crash_count(
                    system, p, pt, subset
                )


def test_generic_knows_matches(system):
    victim = system.processes[-1]
    predicate = lambda pt: pt.run.crashed_by(victim, pt.time)  # noqa: E731
    for p in system.processes:
        for pt in system.points():
            assert system.knows(p, pt, predicate) == naive_knows(
                system, p, pt, predicate
            )


def test_checker_knows_agrees_with_system_knows(system):
    checker = ModelChecker(system)
    victim = system.processes[-1]
    for p in system.processes:
        phi = Knows(p, Crashed(victim))
        for pt in system.points():
            assert checker.holds(phi, pt) == system.knows_crashed(p, pt, victim)


def test_common_knowledge_points_match(system):
    mc = ModelChecker(system)
    group_checker = GroupChecker(mc)
    victim = system.processes[-1]
    groups = [
        tuple(system.processes),
        tuple(system.processes[:2]),
    ]
    for phi in (Crashed(victim), Not(Crashed(victim))):
        for group in groups:
            fast = group_checker.common_knowledge_points(group, phi)
            naive = naive_common_knowledge_points(mc, group, phi)
            assert fast == naive


def test_max_e_depth_matches(system):
    mc = ModelChecker(system)
    group_checker = GroupChecker(mc)
    victim = system.processes[-1]
    group = tuple(system.processes)
    phi = Crashed(victim)
    for run in system.runs[:3]:
        for m in (0, run.duration // 2, run.duration):
            pt = next(p for p in system.points() if p.run is run and p.time == m)
            assert group_checker.max_e_depth(
                group, phi, pt, cap=4
            ) == naive_max_e_depth(mc, group, phi, pt, cap=4)
