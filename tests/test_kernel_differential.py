"""Differential tests: class-based kernel vs the naive point-scanning
reference (:mod:`repro.knowledge.reference`) on randomized small systems.

Every knowledge primitive and both group-knowledge fixpoints must agree
point-for-point with the retained naive implementation; this is what
pins the fast path's semantics while the representation underneath it
changes.

The explorer classes at the bottom tie :mod:`repro.explore` into the
same contract: the exhaustively enumerated run set must contain every
run the seeded ensemble samples (truncated to the horizon), and the
kernel must agree with the naive reference on explorer-built systems.
"""

import pytest

from repro import (
    EnsembleSpec,
    ExploreSpec,
    explore,
    make_process_ids,
    run_ensemble,
    uniform_protocol,
)
from repro.core.protocols import NUDCProcess
from repro.knowledge import Crashed, GroupChecker, Knows, ModelChecker, Not
from repro.knowledge.reference import (
    naive_common_knowledge_points,
    naive_indistinguishable_points,
    naive_known_crash_count,
    naive_known_crashed_set,
    naive_knows,
    naive_knows_crashed,
    naive_max_e_depth,
)
from repro.model.synthetic import synthetic_system
from repro.sim.failures import all_crash_plans
from repro.workloads.generators import single_action

CASES = [
    # (n processes, runs, seed, duration)
    (2, 4, 0, 5),
    (3, 6, 1, 6),
    (3, 6, 2, 6),
    (4, 8, 3, 6),
    (4, 8, 4, 8),
    (5, 6, 5, 6),
]


def make_system(case):
    n, runs, seed, duration = case
    return synthetic_system(n, runs, seed=seed, duration=duration)


@pytest.fixture(params=CASES, ids=lambda c: f"n{c[0]}r{c[1]}s{c[2]}")
def system(request):
    return make_system(request.param)


def test_indistinguishable_points_match(system):
    for p in system.processes:
        for pt in system.points():
            fast = list(system.indistinguishable_points(p, pt))
            naive = naive_indistinguishable_points(system, p, pt)
            assert fast == naive


def test_knows_crashed_matches(system):
    for p in system.processes:
        for pt in system.points():
            for q in system.processes:
                assert system.knows_crashed(p, pt, q) == naive_knows_crashed(
                    system, p, pt, q
                ), (p, pt.time, q)


def test_known_crashed_set_matches(system):
    for p in system.processes:
        for pt in system.points():
            assert system.known_crashed_set(p, pt) == naive_known_crashed_set(
                system, p, pt
            )


def test_known_crash_count_matches(system):
    procs = system.processes
    subsets = [
        frozenset(procs),
        frozenset(procs[:1]),
        frozenset(procs[1:]),
        frozenset(procs[::2]),
    ]
    for p in procs:
        for pt in system.points():
            for subset in subsets:
                assert system.known_crash_count(p, pt, subset) == naive_known_crash_count(
                    system, p, pt, subset
                )


def test_generic_knows_matches(system):
    victim = system.processes[-1]
    predicate = lambda pt: pt.run.crashed_by(victim, pt.time)  # noqa: E731
    for p in system.processes:
        for pt in system.points():
            assert system.knows(p, pt, predicate) == naive_knows(
                system, p, pt, predicate
            )


def test_checker_knows_agrees_with_system_knows(system):
    checker = ModelChecker(system)
    victim = system.processes[-1]
    for p in system.processes:
        phi = Knows(p, Crashed(victim))
        for pt in system.points():
            assert checker.holds(phi, pt) == system.knows_crashed(p, pt, victim)


def test_common_knowledge_points_match(system):
    mc = ModelChecker(system)
    group_checker = GroupChecker(mc)
    victim = system.processes[-1]
    groups = [
        tuple(system.processes),
        tuple(system.processes[:2]),
    ]
    for phi in (Crashed(victim), Not(Crashed(victim))):
        for group in groups:
            fast = group_checker.common_knowledge_points(group, phi)
            naive = naive_common_knowledge_points(mc, group, phi)
            assert fast == naive


def _canonical(run, horizon):
    """A run's observable content up to the horizon, as a value."""
    return tuple(
        (p, tuple((t, e) for t, e in run.timeline(p) if t <= horizon))
        for p in sorted(run.processes)
    )


class TestExplorerSupersetOfEnsemble:
    """The enumerated run set contains every sampled run (prefix-wise).

    The seeded executor's adversary draws (delays, postponements,
    within-tick shuffles) are all instances of the explorer's defer
    choices, so for matched crash plans every ensemble run truncated to
    the horizon must appear among the explorer's runs.  Activation
    skipping is outside the explorer's model, so the ensemble runs with
    the default ``activation_prob=1`` and no detector.
    """

    @pytest.mark.parametrize("n", [2, 3])
    def test_superset(self, n):
        procs = make_process_ids(n)
        horizon = 4
        plans = tuple(all_crash_plans(procs, max_failures=1, crash_tick=2))
        sampled = run_ensemble(
            EnsembleSpec(
                processes=procs,
                protocol=uniform_protocol(NUDCProcess),
                crash_plans=plans,
                workload=single_action("p1", tick=1),
                seeds=tuple(range(10)),
            ),
            cache=None,
        ).runs
        explored = explore(
            ExploreSpec(
                processes=procs,
                protocol=uniform_protocol(NUDCProcess),
                horizon=horizon,
                max_failures=1,
                crash_ticks=(2,),
                workload=single_action("p1", tick=1),
            ),
            cache=None,
        ).runs
        explored_set = {_canonical(r, horizon) for r in explored}
        for run in sampled:
            assert _canonical(run, horizon) in explored_set


class TestExplorerSystemMatchesNaiveKernel:
    """The fast kernel and the naive reference agree on explorer systems."""

    @pytest.fixture(scope="class", params=["reliable", "lossy"])
    def explorer_system(self, request):
        spec = ExploreSpec(
            processes=make_process_ids(3),
            protocol=uniform_protocol(NUDCProcess),
            horizon=4,
            max_failures=1,
            crash_ticks=(1, 3),
            workload=single_action("p1", tick=1),
            lossy=request.param == "lossy",
            max_consecutive_drops=1,
        )
        return explore(spec, cache=None).system()

    def test_knows_crashed_matches(self, explorer_system):
        system = explorer_system
        for p in system.processes:
            for pt in system.points():
                for q in system.processes:
                    assert system.knows_crashed(p, pt, q) == naive_knows_crashed(
                        system, p, pt, q
                    )

    def test_generic_knows_matches(self, explorer_system):
        system = explorer_system
        predicate = lambda pt: pt.run.crashed_by("p1", pt.time)  # noqa: E731
        for p in system.processes:
            for pt in system.points():
                assert system.knows(p, pt, predicate) == naive_knows(
                    system, p, pt, predicate
                )

    def test_common_knowledge_points_match(self, explorer_system):
        mc = ModelChecker(explorer_system)
        group_checker = GroupChecker(mc)
        group = tuple(explorer_system.processes)
        for phi in (Crashed("p1"), Not(Crashed("p1"))):
            fast = group_checker.common_knowledge_points(group, phi)
            naive = naive_common_knowledge_points(mc, group, phi)
            assert fast == naive


def test_max_e_depth_matches(system):
    mc = ModelChecker(system)
    group_checker = GroupChecker(mc)
    victim = system.processes[-1]
    group = tuple(system.processes)
    phi = Crashed(victim)
    for run in system.runs[:3]:
        for m in (0, run.duration // 2, run.duration):
            pt = next(p for p in system.points() if p.run is run and p.time == m)
            assert group_checker.max_e_depth(
                group, phi, pt, cap=4
            ) == naive_max_e_depth(mc, group, phi, pt, cap=4)
