"""Unit tests for Table 1's plumbing (regime arithmetic, cell verdicts)."""

import pytest

from repro.harness.table1 import Cell, Table1, _t_for_regime


class TestRegimeArithmetic:
    @pytest.mark.parametrize(
        "n,expected",
        [(4, 1), (5, 2), (6, 2), (7, 3)],
    )
    def test_small_regime_below_half(self, n, expected):
        t = _t_for_regime(n, "t < n/2")
        assert t == expected
        assert 2 * t < n

    @pytest.mark.parametrize("n", [4, 5, 6, 7])
    def test_middle_regime_bounds(self, n):
        t = _t_for_regime(n, "n/2 <= t < n-1")
        assert 2 * t >= n
        assert t < n - 1

    @pytest.mark.parametrize("n", [4, 5, 6, 7])
    def test_large_regime(self, n):
        assert _t_for_regime(n, "t >= n-1") == n - 1


class TestCellVerdicts:
    def test_plain_ok(self):
        cell = Cell("Reliable", "UDC", "t < n/2", "no FD", True)
        assert cell.verdict == "OK"
        assert cell.matches_paper

    def test_sufficiency_failure(self):
        cell = Cell("Reliable", "UDC", "t < n/2", "no FD", False)
        assert cell.verdict == "FAIL"
        assert not cell.matches_paper

    def test_necessity_confirmed(self):
        cell = Cell(
            "Unreliable",
            "UDC",
            "n/2 <= t < n-1",
            "t-useful",
            True,
            weaker_detector="no FD",
            weaker_fails=True,
        )
        assert cell.verdict == "OK; weaker fails"
        assert cell.matches_paper

    def test_necessity_refuted_flags_mismatch(self):
        cell = Cell(
            "Unreliable",
            "UDC",
            "n/2 <= t < n-1",
            "t-useful",
            True,
            weaker_detector="no FD",
            weaker_fails=False,
        )
        assert "SUFFICES?" in cell.verdict
        assert not cell.matches_paper

    def test_table_aggregates(self):
        good = Cell("Reliable", "UDC", "t < n/2", "no FD", True)
        bad = Cell("Reliable", "UDC", "t >= n-1", "no FD", False)
        assert Table1(n=5, cells=[good]).matches_paper
        assert not Table1(n=5, cells=[good, bad]).matches_paper
