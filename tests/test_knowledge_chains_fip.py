"""Message chains, knowledge gain, and the full-information wrapper.

The two principles tested here are the operational core of the paper's
A4 discussion:

* knowledge gain: learning a remote stable fact REQUIRES a message
  chain from its owner (in detector-free, message-passing-only systems);
* full-information transfer: under an FIP, a message chain is also
  SUFFICIENT -- knowledge of initiations is exactly chain reachability.
"""

from repro.core.protocols import NUDCProcess, StrongFDUDCProcess
from repro.knowledge import ModelChecker
from repro.knowledge.chains import (
    chain_closure,
    has_message_chain,
    knowledge_gain_violations,
    match_sends_to_receives,
)
from repro.knowledge.formulas import Inited, Knows
from repro.model.context import make_process_ids
from repro.model.events import InitEvent, Message, ReceiveEvent, SendEvent
from repro.model.run import Point, Run
from repro.sim.ensembles import a5t_ensemble
from repro.sim.fip import (
    FIP,
    init_fact,
    known_facts,
    with_full_information,
)
from repro.sim.process import uniform_protocol
from repro.workloads.generators import single_action

PROCS = make_process_ids(4)
SMALL = ("p1", "p2", "p3")
MSG = Message("m")


def relay_run():
    """p1 -> p2 -> p3 relay; no chain reaches p3 before time 7."""
    m2 = Message("fwd")
    return Run(
        SMALL,
        {
            "p1": [(2, SendEvent("p1", "p2", MSG))],
            "p2": [(4, ReceiveEvent("p2", "p1", MSG)), (5, SendEvent("p2", "p3", m2))],
            "p3": [(7, ReceiveEvent("p3", "p2", m2))],
        },
        duration=10,
    )


class TestMatching:
    def test_receive_matched_to_earliest_send(self):
        r = Run(
            SMALL,
            {
                "p1": [(1, SendEvent("p1", "p2", MSG)), (3, SendEvent("p1", "p2", MSG))],
                "p2": [(5, ReceiveEvent("p2", "p1", MSG))],
                "p3": [],
            },
            duration=8,
        )
        matching = match_sends_to_receives(r)
        assert matching[("p2", 5)] == ("p1", 1)

    def test_two_receives_two_sends(self):
        r = Run(
            SMALL,
            {
                "p1": [(1, SendEvent("p1", "p2", MSG)), (3, SendEvent("p1", "p2", MSG))],
                "p2": [
                    (5, ReceiveEvent("p2", "p1", MSG)),
                    (6, ReceiveEvent("p2", "p1", MSG)),
                ],
                "p3": [],
            },
            duration=8,
        )
        matching = match_sends_to_receives(r)
        assert matching[("p2", 5)] == ("p1", 1)
        assert matching[("p2", 6)] == ("p1", 3)


class TestChains:
    def test_direct_chain(self):
        assert has_message_chain(relay_run(), "p1", 0, "p2", 4)
        assert not has_message_chain(relay_run(), "p1", 0, "p2", 3)

    def test_two_hop_chain(self):
        assert has_message_chain(relay_run(), "p1", 0, "p3", 7)
        assert not has_message_chain(relay_run(), "p1", 0, "p3", 6)

    def test_chain_respects_start_time(self):
        # p1's only send is at 2; a chain starting after that never forms.
        assert not has_message_chain(relay_run(), "p1", 3, "p3", 10)

    def test_condition_b_send_after_receive(self):
        # p2's send at 5 happens after its receive at 4 -- but if p2 had
        # sent BEFORE receiving, no chain extends through it.
        m2 = Message("fwd")
        r = Run(
            SMALL,
            {
                "p1": [(4, SendEvent("p1", "p2", MSG))],
                "p2": [
                    (2, SendEvent("p2", "p3", m2)),
                    (6, ReceiveEvent("p2", "p1", MSG)),
                ],
                "p3": [(5, ReceiveEvent("p3", "p2", m2))],
            },
            duration=10,
        )
        assert not has_message_chain(r, "p1", 0, "p3", 10)

    def test_trivial_chain_to_self(self):
        assert has_message_chain(relay_run(), "p1", 3, "p1", 3)
        assert not has_message_chain(relay_run(), "p1", 5, "p1", 3)

    def test_closure(self):
        closure = chain_closure(relay_run(), "p1", 0, 10)
        assert closure == {"p1": 0, "p2": 4, "p3": 7}


class TestKnowledgeGain:
    def test_no_violations_in_detector_free_ensemble(self):
        """Knowledge of a remote init only arises along message chains.

        The ensemble must contain runs in which the init never happens:
        with a deterministic always-inits workload, "knowledge" of the
        init would hold vacuously at every non-initial point, relative
        to the ensemble, with no transmission at all.  Mixing in
        initiation-free runs restores the intended semantics.
        """
        with_action = a5t_ensemble(
            PROCS,
            uniform_protocol(NUDCProcess),
            t=2,
            workload=single_action("p1", tick=1),
            seeds=(0, 1),
        )
        without_action = a5t_ensemble(
            PROCS,
            uniform_protocol(NUDCProcess),
            t=2,
            workload=[],
            seeds=(0, 1),
        )
        system = with_action.union(without_action)
        checker = ModelChecker(system)
        action = ("p1", "a0")

        def first_true(run):
            for t, e in run.timeline("p1"):
                if isinstance(e, InitEvent) and e.action == action:
                    return t
            return None

        violations = knowledge_gain_violations(
            system, checker, Inited("p1", action), "p1", first_true
        )
        assert violations == []

    def test_knowledge_does_spread_along_chains(self):
        """Sanity for the previous test: somebody does come to know."""
        system = a5t_ensemble(
            PROCS,
            uniform_protocol(NUDCProcess),
            t=0,
            workload=single_action("p1", tick=1),
            seeds=(0,),
        )
        checker = ModelChecker(system)
        run = system.runs[0]
        action = ("p1", "a0")
        knowers = [
            q
            for q in PROCS
            if q != "p1"
            and checker.holds(Knows(q, Inited("p1", action)), Point(run, run.duration))
        ]
        assert knowers


class TestFullInformation:
    def fip_system(self, seeds=(0, 1)):
        with_action = a5t_ensemble(
            PROCS,
            with_full_information(uniform_protocol(NUDCProcess)),
            t=1,
            workload=single_action("p1", tick=1),
            seeds=seeds,
        )
        # Initiation-free twin runs keep ensemble knowledge honest (see
        # TestKnowledgeGain).
        without_action = a5t_ensemble(
            PROCS,
            with_full_information(uniform_protocol(NUDCProcess)),
            t=1,
            workload=[],
            seeds=seeds,
        )
        return with_action.union(without_action)

    def test_fip_messages_carry_facts(self):
        system = self.fip_system(seeds=(0,))
        run = system.runs[0]
        fip_sends = [
            e
            for p in PROCS
            for e in run.events(p)
            if isinstance(e, SendEvent) and e.message.kind == FIP
        ]
        assert fip_sends
        inner, facts = fip_sends[0].message.payload
        assert isinstance(facts, frozenset)

    def test_wrapper_state_is_history_function(self):
        system = self.fip_system(seeds=(0,))
        run = system.runs[0]
        action = ("p1", "a0")
        # Reconstructing facts from the history must find the init fact
        # at any process that received a FIP message.
        for p in PROCS:
            got_fip = any(
                isinstance(e, ReceiveEvent) and e.message.kind == FIP
                for e in run.events(p)
            )
            if got_fip:
                assert init_fact("p1", action) in known_facts(
                    run, p, run.duration
                )

    def test_full_information_transfer(self):
        """Under the FIP, a chain from the initiator after its init
        DELIVERS knowledge of the init: chains == knowledge."""
        system = self.fip_system()
        checker = ModelChecker(system)
        action = ("p1", "a0")
        formula = Inited("p1", action)
        checked = 0
        for run in system:
            init_t = next(
                (
                    t
                    for t, e in run.timeline("p1")
                    if isinstance(e, InitEvent)
                ),
                None,
            )
            if init_t is None:
                continue
            for q in PROCS:
                if q == "p1":
                    continue
                chain = has_message_chain(run, "p1", init_t, q, run.duration)
                knows = checker.holds(
                    Knows(q, formula), Point(run, run.duration)
                )
                assert chain == knows, (q, chain, knows)
                checked += 1
        assert checked >= 3

    def test_fip_composes_with_detector_protocol(self):
        from repro.core.properties import udc_holds
        from repro.detectors.standard import StrongOracle
        from repro.sim.executor import Executor
        from repro.sim.failures import CrashPlan

        run = Executor(
            PROCS,
            with_full_information(uniform_protocol(StrongFDUDCProcess)),
            crash_plan=CrashPlan.of({"p3": 7}),
            workload=single_action("p1", tick=1),
            detector=StrongOracle(),
            seed=0,
        ).run()
        assert udc_holds(run)
