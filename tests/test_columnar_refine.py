"""Incremental class refinement differential: extend == rebuild, bitwise.

The serve subsystem folds streamed-in runs into a live columnar kernel
via :meth:`ColumnarKernel.refined` (reached through
:meth:`System.extend`).  Acceptance pins the refined kernel's *tables*
-- class ids, CSR members, sizes, offsets, crash rows, known masks --
and its *answers* (Knows, E^k, C_G) bit-identical to a kernel built
from scratch over the concatenated run list, under both buffer
backends, across multiple refinement rounds, and when the ingested
runs grow the interned event alphabet (the trie re-key path).
"""

from __future__ import annotations

import random

import pytest

from repro.columnar.arena import encode_runs, extend_arena
from repro.knowledge import Crashed, GroupChecker, Knows, ModelChecker, Not
from repro.model.run import Point
from repro.model.synthetic import synthetic_run, synthetic_system
from repro.model.system import System

BACKENDS = ["numpy", "no-numpy"]

#: kernel table attributes that must match a from-scratch rebuild exactly
_TABLE_FIELDS = (
    "class_base",
    "total_classes",
    "crash_rows",
    "point_class_rows",
    "class_points_csr",
    "class_sizes",
    "class_offsets_csr",
)


def _set_backend(backend: str, monkeypatch) -> None:
    if backend == "no-numpy":
        monkeypatch.setenv("REPRO_COLUMNAR_NUMPY", "0")
    else:
        monkeypatch.delenv("REPRO_COLUMNAR_NUMPY", raising=False)


def _as_lists(value):
    if hasattr(value, "tolist"):
        return value.tolist()
    return value


def _assert_tables_equal(refined, rebuilt) -> None:
    for name in _TABLE_FIELDS:
        assert _as_lists(getattr(refined, name)) == _as_lists(
            getattr(rebuilt, name)
        ), f"kernel table {name} diverged from rebuild"
    assert refined.known_masks == rebuilt.known_masks
    assert tuple(refined.arena.events) == tuple(rebuilt.arena.events)
    assert refined.arena.columns_as_lists() == rebuilt.arena.columns_as_lists()
    assert refined.arena.metas == rebuilt.arena.metas


def _assert_answers_equal(left: System, right: System) -> None:
    lc, rc = ModelChecker(left), ModelChecker(right)
    lg, rg = GroupChecker(lc), GroupChecker(rc)
    procs = left.processes
    crashed = Crashed(procs[0])
    for run in left.runs:
        for m in range(run.duration + 1):
            pt = Point(run, m)
            for p in procs:
                assert lc.holds(Knows(p, crashed), pt) == rc.holds(
                    Knows(p, crashed), pt
                )
            assert left.known_crashed_set(procs[0], pt) == right.known_crashed_set(
                procs[0], pt
            )
    assert lg.common_knowledge_points(procs, Not(crashed)) == (
        rg.common_knowledge_points(procs, Not(crashed))
    )
    pt0 = Point(left.runs[0], 2)
    assert lg.max_e_depth(procs, Not(crashed), pt0, cap=4) == (
        rg.max_e_depth(procs, Not(crashed), pt0, cap=4)
    )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("alphabet", [2, 3])
def test_refined_kernel_is_bit_identical_to_rebuild(
    backend, alphabet, monkeypatch
) -> None:
    """One ingest round; alphabet=3 grows the event set (trie re-key)."""
    _set_backend(backend, monkeypatch)
    base = System(
        synthetic_system(3, 5, seed=1, duration=6).runs, kernel="columnar"
    )
    base.build_index()
    rng = random.Random(99)
    extra = tuple(
        synthetic_run(base.processes, rng, duration=6, alphabet=alphabet)
        for _ in range(4)
    )
    child = base.extend(extra)
    rebuilt = System(base.runs + extra, kernel="columnar")
    rebuilt.build_index()
    refined_kernel = child.columnar_kernel()
    rebuilt_kernel = rebuilt.columnar_kernel()
    assert refined_kernel is not None and rebuilt_kernel is not None
    if alphabet > 2:
        assert len(refined_kernel.arena.events) > len(
            base.columnar_kernel().arena.events
        ), "alphabet growth case must actually exercise the re-key path"
    _assert_tables_equal(refined_kernel, rebuilt_kernel)
    _assert_answers_equal(child, rebuilt)


@pytest.mark.parametrize("backend", BACKENDS)
def test_multiple_refinement_rounds_chain(backend, monkeypatch) -> None:
    """Refinement of a refinement still matches one big rebuild."""
    _set_backend(backend, monkeypatch)
    base = System(
        synthetic_system(3, 4, seed=7, duration=5).runs, kernel="columnar"
    )
    base.build_index()
    rng = random.Random(5)
    current = base
    all_runs = list(base.runs)
    for round_no in range(3):
        batch = tuple(
            synthetic_run(base.processes, rng, duration=5, alphabet=2 + round_no)
            for _ in range(2)
        )
        current = current.extend(batch)
        all_runs.extend(batch)
    rebuilt = System(tuple(all_runs), kernel="columnar")
    rebuilt.build_index()
    _assert_tables_equal(current.columnar_kernel(), rebuilt.columnar_kernel())
    _assert_answers_equal(current, rebuilt)
    assert current.stats.arena_refinements == 1  # last hop's child counter
    assert len(current.runs) == len(base.runs) + 6


def test_extend_empty_batch_returns_self() -> None:
    base = System(synthetic_system(2, 3, seed=0, duration=4).runs)
    assert base.extend(()) is base


def test_extend_before_kernel_build_defers_to_lazy_build() -> None:
    """Extending a system that never built its kernel must not refine."""
    base = System(
        synthetic_system(2, 3, seed=0, duration=4).runs, kernel="columnar"
    )
    rng = random.Random(1)
    child = base.extend(
        (synthetic_run(base.processes, rng, duration=4),)
    )
    assert child.stats.arena_refinements == 0
    rebuilt = System(child.runs, kernel="columnar")
    _assert_tables_equal(child.columnar_kernel(), rebuilt.columnar_kernel())


def test_refinement_leaves_base_kernel_untouched() -> None:
    base = System(
        synthetic_system(3, 4, seed=3, duration=5).runs, kernel="columnar"
    )
    base.build_index()
    kernel = base.columnar_kernel()
    before_classes = kernel.total_classes
    before_events = tuple(kernel.arena.events)
    before_trie_len = len(kernel._trie)
    rng = random.Random(2)
    base.extend(
        tuple(
            synthetic_run(base.processes, rng, duration=5, alphabet=3)
            for _ in range(3)
        )
    )
    assert kernel.total_classes == before_classes
    assert tuple(kernel.arena.events) == before_events
    # Alphabet growth forces a re-keyed *copy* of the trie; the base
    # kernel's dict must not have been rewritten underneath it.
    assert len(kernel._trie) == before_trie_len
    _assert_answers_equal(base, System(base.runs, kernel="columnar"))


def test_sibling_refinements_from_one_base_do_not_collide() -> None:
    """Two children extending the same base (shared trie) stay correct."""
    base = System(
        synthetic_system(3, 4, seed=4, duration=5).runs, kernel="columnar"
    )
    base.build_index()
    rng = random.Random(11)
    batch_a = tuple(
        synthetic_run(base.processes, rng, duration=5) for _ in range(2)
    )
    batch_b = tuple(
        synthetic_run(base.processes, rng, duration=5) for _ in range(2)
    )
    child_a = base.extend(batch_a)
    child_b = base.extend(batch_b)
    for child, batch in ((child_a, batch_a), (child_b, batch_b)):
        rebuilt = System(base.runs + batch, kernel="columnar")
        rebuilt.build_index()
        _assert_tables_equal(child.columnar_kernel(), rebuilt.columnar_kernel())


def test_refinement_stats_counters() -> None:
    base = System(
        synthetic_system(2, 3, seed=6, duration=4).runs, kernel="columnar"
    )
    base.build_index()
    rng = random.Random(8)
    child = base.extend(
        (synthetic_run(base.processes, rng, duration=4),)
    )
    child.columnar_kernel()
    assert child.stats.arena_refinements == 1
    assert child.stats.arena_builds == 0
    assert base.stats.arena_refinements == 0
    assert base.stats.arena_builds == 1


def test_adopt_columnar_kernel_rejects_misuse() -> None:
    base = System(
        synthetic_system(2, 3, seed=0, duration=4).runs, kernel="columnar"
    )
    kernel = base.columnar_kernel()
    other = System(base.runs, kernel="columnar")
    with pytest.raises(ValueError, match="different system"):
        other.adopt_columnar_kernel(kernel)
    with pytest.raises(ValueError, match="already has"):
        base.adopt_columnar_kernel(kernel)
    class_mode = System(base.runs, kernel="class")
    with pytest.raises(ValueError, match="does not use"):
        class_mode.adopt_columnar_kernel(kernel)


@pytest.mark.parametrize("backend", BACKENDS)
def test_extend_arena_matches_bulk_encode(backend, monkeypatch) -> None:
    """The arena-level primitive: append == encode over concatenation."""
    _set_backend(backend, monkeypatch)
    base_runs = synthetic_system(3, 4, seed=2, duration=5).runs
    rng = random.Random(3)
    extra = tuple(
        synthetic_run(base_runs[0].processes, rng, duration=5, alphabet=3)
        for _ in range(3)
    )
    extended = extend_arena(encode_runs(base_runs), extra)
    bulk = encode_runs(base_runs + extra)
    assert tuple(extended.events) == tuple(bulk.events)
    assert extended.n_runs == bulk.n_runs
    assert extended.metas == bulk.metas
    assert extended.columns_as_lists() == bulk.columns_as_lists()


def test_extend_arena_empty_batch_is_identity() -> None:
    arena = encode_runs(synthetic_system(2, 2, seed=0, duration=3).runs)
    assert extend_arena(arena, ()) is arena
