"""Negative-path tests: injected detector faults are *caught* by the
property checkers of :mod:`repro.detectors.properties` -- both on seeded
executor runs and under the bounded explorer's monitors."""


from repro.core.protocols import StrongFDUDCProcess
from repro.detectors.properties import (
    strong_accuracy,
    strong_completeness,
    weak_accuracy,
    weak_completeness,
)
from repro.detectors.standard import PerfectOracle
from repro.explore import explore
from repro.explore.monitors import detector_monitor_suite
from repro.faults import DetectorFaults, FaultPlan, FaultyDetectorOracle
from repro.model.context import make_process_ids
from repro.model.events import SuspectEvent
from repro.explore import ExploreSpec
from repro.runtime import RunSpec
from repro.sim.executor import ExecutionConfig, Executor
from repro.sim.failures import CrashPlan
from repro.sim.process import uniform_protocol
from repro.workloads.generators import post_crash_workload, single_action

PROCS = make_process_ids(4)
PLAN = CrashPlan.of({"p2": 5})


def run_with(detector=None, fault_plan=None, seed=0, plan=PLAN, max_ticks=5000):
    workload = single_action("p1", tick=1) + post_crash_workload(
        PROCS, plan, actions_per_survivor=1
    )
    config = None
    if fault_plan is not None or max_ticks != 5000:
        config = ExecutionConfig(max_ticks=max_ticks, fault_plan=fault_plan)
    spec = RunSpec(
        processes=PROCS,
        protocol=uniform_protocol(StrongFDUDCProcess),
        crash_plan=plan,
        workload=workload,
        detector=detector,
        config=config,
        seed=seed,
    )
    return Executor.from_spec(spec).run()


class TestInactiveWrapperTransparency:
    def test_inactive_faults_change_nothing(self):
        baseline = run_with(PerfectOracle())
        wrapped = run_with(FaultyDetectorOracle(PerfectOracle(), DetectorFaults()))
        assert baseline == wrapped
        for p in PROCS:
            assert baseline.timeline(p) == wrapped.timeline(p)


class TestTargetedViolations:
    def test_baseline_perfect_oracle_is_perfect(self):
        run = run_with(PerfectOracle())
        assert strong_accuracy(run)
        assert strong_completeness(run)

    def test_suppress_breaks_completeness(self):
        faults = DetectorFaults(suppress=("p2",))
        run = run_with(
            PerfectOracle(), fault_plan=FaultPlan(detector=faults)
        )
        # p2 crashes but is erased from every report: nobody ever
        # suspects it, violating even weak completeness.
        assert not strong_completeness(run)
        assert not weak_completeness(run)
        assert run.meta["faults"].get("detector_distortions", 0) >= 1

    def test_falsely_suspect_breaks_strong_accuracy_only(self):
        faults = DetectorFaults(falsely_suspect=("p3",))
        run = run_with(
            PerfectOracle(), fault_plan=FaultPlan(detector=faults)
        )
        # p3 is live, so suspecting it violates strong accuracy; the
        # fault is targeted, so p1/p4 stay unsuspected and weak
        # accuracy survives.
        assert not strong_accuracy(run)
        assert weak_accuracy(run)

    def test_total_omission_silences_the_detector(self):
        faults = DetectorFaults(omission_prob=1.0)
        run = run_with(
            PerfectOracle(), fault_plan=FaultPlan(detector=faults)
        )
        assert not any(
            isinstance(e, SuspectEvent) for p in PROCS for e in run.events(p)
        )
        assert not strong_completeness(run)
        assert run.meta["faults"]["detector_omissions"] >= 1

    def test_fabrication_lies_without_a_base_report(self):
        # No base detector at all: every report in the run is a lie.
        faults = DetectorFaults(
            falsely_suspect=("p1",), lie_prob=1.0, fabricate_interval=2
        )
        run = run_with(
            fault_plan=FaultPlan(detector=faults),
            plan=CrashPlan.none(),
            max_ticks=120,
        )
        assert any(
            isinstance(e, SuspectEvent) for p in PROCS for e in run.events(p)
        )
        assert not strong_accuracy(run)
        assert run.meta["faults"]["detector_fabrications"] >= 1

    def test_replays_identically(self):
        faults = DetectorFaults(omission_prob=0.5, seed=4)
        plan = FaultPlan(detector=faults)
        a = run_with(PerfectOracle(), fault_plan=plan)
        b = run_with(PerfectOracle(), fault_plan=plan)
        assert a == b
        assert a.meta["faults"] == b.meta["faults"]


class TestExploreMonitors:
    def explore_spec(self, detector):
        return ExploreSpec(
            processes=make_process_ids(3),
            protocol=uniform_protocol(StrongFDUDCProcess),
            horizon=5,
            max_failures=1,
            crash_ticks=(1,),
            workload=single_action("p1", tick=1),
            detector=detector,
        )

    def test_injected_lie_flagged_by_accuracy_monitor(self):
        faulty = FaultyDetectorOracle(
            PerfectOracle(), DetectorFaults(falsely_suspect=("p1",))
        )
        report = explore(
            self.explore_spec(faulty),
            monitors=list(detector_monitor_suite()),
            cache=None,
        )
        assert any(v.monitor == "strong_accuracy" for v in report.violations)

    def test_clean_detector_raises_no_accuracy_violation(self):
        report = explore(
            self.explore_spec(PerfectOracle()),
            monitors=list(detector_monitor_suite()),
            cache=None,
        )
        assert not any("accuracy" in v.monitor for v in report.violations)

    def test_suite_shape(self):
        suite = detector_monitor_suite()
        assert [m.name for m in suite] == ["strong_accuracy", "strong_completeness"]
        assert suite[0].safety and not suite[1].safety
        weak = detector_monitor_suite(weak=True)
        assert [m.name for m in weak] == ["weak_accuracy", "weak_completeness"]


class TestValidation:
    def test_fresh_preserves_faults(self):
        oracle = FaultyDetectorOracle(
            PerfectOracle(), DetectorFaults(suppress=("p2",))
        )
        clone = oracle.fresh()
        assert isinstance(clone, FaultyDetectorOracle)
        assert clone.faults == oracle.faults
        assert clone is not oracle

    def test_name_marks_the_wrapper(self):
        oracle = FaultyDetectorOracle(PerfectOracle(), DetectorFaults())
        assert oracle.name == "faulty(perfect)"
