"""Integration tests: each protocol of the paper attains its property
in its context, across seeds and failure patterns."""

import pytest

from repro.core.properties import actions_in, dc1, nudc_holds, udc_holds
from repro.core.protocols import (
    AtdUDCProcess,
    GeneralizedFDUDCProcess,
    NUDCProcess,
    ReliableUDCProcess,
    StrongFDUDCProcess,
    ack_message,
    alpha_message,
)
from repro.detectors.atd import AtdRotatingOracle
from repro.detectors.generalized import GeneralizedOracle, TrivialSubsetOracle
from repro.detectors.standard import StrongOracle
from repro.model.context import ChannelSemantics, make_process_ids
from repro.model.events import DoEvent, SendEvent
from repro.sim.executor import ExecutionConfig, Executor
from repro.sim.failures import CrashPlan
from repro.sim.network import ChannelConfig
from repro.sim.process import ProcessEnv, uniform_protocol
from repro.workloads.generators import burst_workload, single_action

PROCS = make_process_ids(4)
RELIABLE = ExecutionConfig(channel=ChannelConfig(semantics=ChannelSemantics.RELIABLE))


def execute(factory, **kwargs):
    kwargs.setdefault("workload", single_action("p1", tick=1))
    return Executor(PROCS, factory, **kwargs).run()


class TestNUDCProcess:
    @pytest.mark.parametrize("seed", range(4))
    def test_attains_nudc_under_loss(self, seed):
        run = execute(
            uniform_protocol(NUDCProcess),
            crash_plan=CrashPlan.of({"p2": 6}),
            seed=seed,
        )
        assert nudc_holds(run)

    def test_perform_precedes_first_send(self):
        # The paper's order: "it performs alpha and sends ... repeatedly".
        run = execute(uniform_protocol(NUDCProcess), seed=0)
        do_t = next(
            t for t, e in run.timeline("p1") if isinstance(e, DoEvent)
        )
        send_t = next(
            t for t, e in run.timeline("p1") if isinstance(e, SendEvent)
        )
        assert do_t < send_t

    def test_all_fail_run_vacuous(self):
        run = execute(
            uniform_protocol(NUDCProcess),
            crash_plan=CrashPlan.of({p: 4 for p in PROCS}),
            seed=1,
        )
        assert nudc_holds(run)

    def test_multiple_actions(self):
        run = execute(
            uniform_protocol(NUDCProcess),
            workload=burst_workload(PROCS, tick=1, actions_per_process=2),
            seed=2,
        )
        assert len(actions_in(run)) == 8
        assert nudc_holds(run)


class TestReliableUDCProcess:
    @pytest.mark.parametrize("seed", range(4))
    def test_attains_udc_reliable(self, seed):
        run = execute(
            uniform_protocol(ReliableUDCProcess),
            crash_plan=CrashPlan.of({"p1": 4, "p3": 8}),
            config=RELIABLE,
            seed=seed,
        )
        assert udc_holds(run)

    def test_sends_precede_perform(self):
        # Uniformity hinges on the sends entering the channel before the
        # do event lands.
        run = execute(uniform_protocol(ReliableUDCProcess), config=RELIABLE, seed=0)
        do_t = next(t for t, e in run.timeline("p1") if isinstance(e, DoEvent))
        send_ts = [
            t for t, e in run.timeline("p1") if isinstance(e, SendEvent)
        ]
        assert all(t < do_t for t in send_ts[: len(PROCS) - 1])

    def test_initiator_crash_after_perform_still_uniform(self):
        for seed in range(5):
            run = execute(
                uniform_protocol(ReliableUDCProcess),
                crash_plan=CrashPlan.of({"p1": 6}),
                config=RELIABLE,
                seed=seed,
            )
            assert udc_holds(run)


class TestStrongFDUDCProcess:
    @pytest.mark.parametrize("seed", range(4))
    def test_attains_udc_with_strong_detector(self, seed):
        run = execute(
            uniform_protocol(StrongFDUDCProcess),
            crash_plan=CrashPlan.of({"p2": 5, "p4": 11}),
            detector=StrongOracle(),
            seed=seed,
        )
        assert udc_holds(run)

    def test_stalls_without_detector(self):
        # A crashed process never acks and is never suspected: the
        # initiator cannot discharge its wait, so DC1 fails.
        run = execute(
            uniform_protocol(StrongFDUDCProcess),
            crash_plan=CrashPlan.of({"p2": 3}),
            seed=0,
        )
        action = next(iter(actions_in(run)))
        assert not dc1(run, action)

    def test_performs_without_detector_when_all_live(self):
        run = execute(uniform_protocol(StrongFDUDCProcess), seed=0)
        assert udc_holds(run)

    def test_remembers_suspicions(self):
        # "says or has said": an impermanent detector still unblocks the
        # wait because ever_suspected accumulates.
        from repro.detectors.standard import ImpermanentStrongOracle

        run = execute(
            uniform_protocol(StrongFDUDCProcess),
            crash_plan=CrashPlan.of({"p2": 3}),
            detector=ImpermanentStrongOracle(retract_after=3),
            seed=0,
        )
        assert udc_holds(run)


class TestGeneralizedFDUDCProcess:
    @pytest.mark.parametrize("t,n_crashes", [(1, 1), (2, 2), (3, 3)])
    def test_attains_udc(self, t, n_crashes):
        faulty = {f"p{4 - i}": 5 + 3 * i for i in range(n_crashes)}
        run = execute(
            uniform_protocol(GeneralizedFDUDCProcess, t=t),
            crash_plan=CrashPlan.of(faulty),
            detector=GeneralizedOracle(t),
            seed=0,
        )
        assert udc_holds(run)

    def test_quorum_semantics_with_trivial_oracle(self):
        # t=1 < n/2=2: quorum of n-t acks suffices.
        run = execute(
            uniform_protocol(GeneralizedFDUDCProcess, t=1),
            crash_plan=CrashPlan.of({"p4": 5}),
            detector=TrivialSubsetOracle(1),
            seed=0,
        )
        assert udc_holds(run)

    def test_rejects_negative_t(self):
        env = ProcessEnv("p1", PROCS)
        with pytest.raises(ValueError):
            GeneralizedFDUDCProcess("p1", env, t=-1)


class TestAtdUDCProcess:
    @pytest.mark.parametrize("seed", range(3))
    def test_attains_udc(self, seed):
        run = execute(
            uniform_protocol(AtdUDCProcess),
            crash_plan=CrashPlan.of({"p3": 7}),
            detector=AtdRotatingOracle(rotation_period=10),
            seed=seed,
        )
        assert udc_holds(run)

    def test_uses_current_not_remembered_suspicions(self):
        # A rotating oracle's PAST suspicion of a live process must not
        # let the protocol perform: perform requires the CURRENT set to
        # cover the unknowns.  We check indirectly: with the rotating
        # oracle and no failures, UDC still holds (no premature,
        # propagation-breaking performs).
        run = execute(
            uniform_protocol(AtdUDCProcess),
            detector=AtdRotatingOracle(rotation_period=8),
            seed=1,
        )
        assert udc_holds(run)


class TestMessages:
    def test_message_constructors(self):
        a = alpha_message(("p1", "a"))
        k = ack_message(("p1", "a"))
        assert a.kind == "alpha" and a.payload == ("p1", "a")
        assert k.kind == "ack" and k.payload == ("p1", "a")
        assert a != k


class TestRetransmissionBudget:
    def test_resend_cap_respected(self):
        run = execute(
            uniform_protocol(NUDCProcess, resend_rounds=3),
            crash_plan=CrashPlan.of({"p2": 2}),
            seed=0,
        )
        sends_to_p2 = sum(
            1
            for _, e in run.timeline("p1")
            if isinstance(e, SendEvent) and e.receiver == "p2"
        )
        assert sends_to_p2 <= 3

    def test_resends_stop_after_ack(self):
        run = execute(uniform_protocol(StrongFDUDCProcess), seed=0)
        # Once everything is acked the run quiesces well below the cap.
        alpha_sends = sum(
            1
            for _, e in run.timeline("p1")
            if isinstance(e, SendEvent) and e.message.kind == "alpha"
        )
        assert alpha_sends < 25 * (len(PROCS) - 1)
