"""Whole-program analysis tests: project index, call graph, effect
fixpoint, incremental cache, baseline workflow, and SARIF export.

The cache tests pin the PR's acceptance criteria directly: a warm run
re-parses only changed files while emitting findings byte-identical to
a cold run, and an edit to a *helper* file updates transitive findings
in files that were never re-parsed.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import LintFinding, ModuleUnderLint, Severity, lint_paths
from repro.lint.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.cache import (
    AnalysisCache,
    file_digest,
    ruleset_signature,
    summary_from_dict,
    summary_to_dict,
)
from repro.lint.callgraph import CallGraph
from repro.lint.effects import analyze
from repro.lint.project import ProjectIndex, summarize
from repro.lint.registry import select_rules
from repro.lint.sarif import to_sarif


def _index(tmp_path: Path, files: dict[str, str]) -> ProjectIndex:
    summaries = []
    for name, src in files.items():
        source = textwrap.dedent(src)
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        mod = ModuleUnderLint(path, name, source)
        summaries.append(summarize(mod, file_digest(source.encode()), ()))
    return ProjectIndex.build(summaries)


def _write(tmp_path: Path, files: dict[str, str]) -> Path:
    root = tmp_path / "proj"
    root.mkdir(exist_ok=True)
    for name, src in files.items():
        (root / name).write_text(textwrap.dedent(src))
    return root


# -- project index and call graph ---------------------------------------------


class TestProjectIndex:
    def test_qualnames_cover_methods_and_nested_functions(
        self, tmp_path: Path
    ) -> None:
        index = _index(
            tmp_path,
            {
                "m.py": """\
                # repro: lint-module[repro.serve.m]
                def top():
                    def inner():
                        pass
                    return inner

                class Box:
                    def get(self):
                        return 1
                """
            },
        )
        names = set(index.functions)
        assert "repro.serve.m::top" in names
        assert "repro.serve.m::top.<locals>.inner" in names
        assert "repro.serve.m::Box.get" in names
        assert index.functions["repro.serve.m::Box.get"].class_name == "Box"

    def test_bare_name_and_self_method_resolution(self, tmp_path: Path) -> None:
        index = _index(
            tmp_path,
            {
                "m.py": """\
                # repro: lint-module[repro.serve.m]
                def helper():
                    pass

                class Svc:
                    def _step(self):
                        pass

                    def run(self):
                        helper()
                        self._step()
                """
            },
        )
        graph = CallGraph(index)
        callees = {
            e.callee for e in graph.out_edges.get("repro.serve.m::Svc.run", [])
        }
        assert callees == {"repro.serve.m::helper", "repro.serve.m::Svc._step"}

    def test_cross_module_import_and_attr_type_resolution(
        self, tmp_path: Path
    ) -> None:
        index = _index(
            tmp_path,
            {
                "state.py": """\
                # repro: lint-module[repro.serve.state]
                class Store:
                    def load(self):
                        pass
                """,
                "server.py": """\
                # repro: lint-module[repro.serve.server]
                from repro.serve.state import Store

                class Server:
                    def __init__(self, store: Store) -> None:
                        self.store = store

                    def boot(self):
                        self.store.load()
                        fresh = Store()
                        fresh.load()
                """,
            },
        )
        graph = CallGraph(index)
        callees = {
            e.callee
            for e in graph.out_edges.get("repro.serve.server::Server.boot", [])
        }
        assert "repro.serve.state::Store.load" in callees

    def test_base_class_method_resolution(self, tmp_path: Path) -> None:
        index = _index(
            tmp_path,
            {
                "m.py": """\
                # repro: lint-module[repro.serve.m]
                class Base:
                    def shared(self):
                        pass

                class Child(Base):
                    def go(self):
                        self.shared()
                """
            },
        )
        graph = CallGraph(index)
        callees = {
            e.callee for e in graph.out_edges.get("repro.serve.m::Child.go", [])
        }
        assert callees == {"repro.serve.m::Base.shared"}

    def test_unresolved_calls_produce_no_edges(self, tmp_path: Path) -> None:
        index = _index(
            tmp_path,
            {
                "m.py": """\
                # repro: lint-module[repro.serve.m]
                def run(thing):
                    thing.spin()
                    getattr(thing, "spin")()
                """
            },
        )
        graph = CallGraph(index)
        assert graph.out_edges.get("repro.serve.m::run", []) == []


# -- effect fixpoint ----------------------------------------------------------


class TestEffects:
    def test_blocking_propagates_two_hops_with_chain(
        self, tmp_path: Path
    ) -> None:
        index = _index(
            tmp_path,
            {
                "m.py": """\
                # repro: lint-module[repro.serve.m]
                import time

                def low():
                    time.sleep(1)

                def mid():
                    low()

                def high():
                    mid()
                """
            },
        )
        effects = analyze(index)
        assert effects.has_effect("repro.serve.m::high", "blocking")
        chain = effects.describe_chain("repro.serve.m::high", "blocking")
        assert chain == "mid -> low -> time.sleep"

    def test_executor_thunk_cuts_blocking_propagation(
        self, tmp_path: Path
    ) -> None:
        index = _index(
            tmp_path,
            {
                "m.py": """\
                # repro: lint-module[repro.serve.m]
                import time

                def blocker():
                    time.sleep(1)

                async def handler(loop):
                    await loop.run_in_executor(None, blocker)
                """
            },
        )
        effects = analyze(index)
        assert effects.has_effect("repro.serve.m::blocker", "blocking")
        assert not effects.has_effect("repro.serve.m::handler", "blocking")

    def test_unpicklable_flows_only_through_return_positions(
        self, tmp_path: Path
    ) -> None:
        index = _index(
            tmp_path,
            {
                "m.py": """\
                # repro: lint-module[repro.runtime.m]
                import threading

                def make():
                    return threading.Lock()

                def passthru():
                    return make()

                def internal_use_only():
                    guard = make()
                    return 1
                """
            },
        )
        effects = analyze(index)
        assert effects.has_effect("repro.runtime.m::make", "unpicklable")
        assert effects.has_effect("repro.runtime.m::passthru", "unpicklable")
        assert not effects.has_effect(
            "repro.runtime.m::internal_use_only", "unpicklable"
        )

    def test_fixpoint_is_deterministic(self, tmp_path: Path) -> None:
        files = {
            "m.py": """\
            # repro: lint-module[repro.serve.m]
            import time

            def a():
                b()
                c()

            def b():
                time.sleep(1)

            def c():
                time.sleep(2)
            """
        }
        first = analyze(_index(tmp_path / "one", files))
        second = analyze(_index(tmp_path / "two", files))
        w1 = first.effect_of("repro.serve.m::a", "blocking")
        w2 = second.effect_of("repro.serve.m::a", "blocking")
        assert w1 is not None and w2 is not None
        assert (w1.via, w1.line, w1.col) == (w2.via, w2.line, w2.col)
        # smallest call site wins: b() on the earlier line
        assert w1.via == "repro.serve.m::b"


# -- incremental cache --------------------------------------------------------


_SERVE_A = """\
# repro: lint-module[repro.serve.handlers]
import asyncio
from repro.serve.util import helper


async def handle():
    helper()
    await asyncio.sleep(0)
"""

_SERVE_B_CLEAN = """\
# repro: lint-module[repro.serve.util]
def helper():
    return 1
"""

_SERVE_B_BLOCKING = """\
# repro: lint-module[repro.serve.util]
import time


def helper():
    time.sleep(0.5)
"""


class TestIncrementalCache:
    def test_warm_run_is_byte_identical_and_parse_free(
        self, tmp_path: Path
    ) -> None:
        root = _write(
            tmp_path, {"a.py": _SERVE_A, "b.py": _SERVE_B_BLOCKING}
        )
        cache_dir = tmp_path / "cache"
        cold = lint_paths([root], cache_dir=cache_dir)
        warm = lint_paths([root], cache_dir=cache_dir)
        assert cold.files_reparsed == 2 and cold.cache_hits == 0
        assert warm.files_reparsed == 0 and warm.cache_hits == 2
        assert json.dumps(cold.as_dict()) == json.dumps(warm.as_dict())
        assert any(f.rule == "ASY003" for f in cold.findings)

    def test_helper_edit_updates_findings_in_unreparsed_file(
        self, tmp_path: Path
    ) -> None:
        root = _write(tmp_path, {"a.py": _SERVE_A, "b.py": _SERVE_B_CLEAN})
        cache_dir = tmp_path / "cache"
        clean = lint_paths([root], cache_dir=cache_dir)
        assert clean.findings == ()

        (root / "b.py").write_text(textwrap.dedent(_SERVE_B_BLOCKING))
        warm = lint_paths([root], cache_dir=cache_dir)
        # only the edited helper was re-parsed...
        assert warm.files_reparsed == 1 and warm.cache_hits == 1
        # ...yet the transitive finding lands in the *unchanged* file
        assert [f.rule for f in warm.findings] == ["ASY003"]
        assert warm.findings[0].file.endswith("a.py")
        # and matches a cold run exactly
        cold = lint_paths([root])
        assert cold.findings == warm.findings

    def test_rule_selection_invalidates_the_cache(self, tmp_path: Path) -> None:
        root = _write(tmp_path, {"a.py": _SERVE_A, "b.py": _SERVE_B_CLEAN})
        cache_dir = tmp_path / "cache"
        lint_paths([root], cache_dir=cache_dir)
        narrowed = lint_paths(
            [root], select=lambda rid: rid == "ASY003", cache_dir=cache_dir
        )
        assert narrowed.files_reparsed == 2  # different ruleset signature

    def test_corrupt_cache_degrades_to_cold_run(self, tmp_path: Path) -> None:
        root = _write(tmp_path, {"a.py": _SERVE_A, "b.py": _SERVE_B_BLOCKING})
        cache_dir = tmp_path / "cache"
        lint_paths([root], cache_dir=cache_dir)
        (cache_dir / "analysis.json").write_text("{not json")
        report = lint_paths([root], cache_dir=cache_dir)
        assert report.files_reparsed == 2
        assert any(f.rule == "ASY003" for f in report.findings)

    def test_parse_errors_are_cached_and_replayed(self, tmp_path: Path) -> None:
        root = _write(tmp_path, {"bad.py": "def broken(:\n"})
        cache_dir = tmp_path / "cache"
        cold = lint_paths([root], cache_dir=cache_dir)
        warm = lint_paths([root], cache_dir=cache_dir)
        assert cold.parse_errors and warm.parse_errors == cold.parse_errors
        assert warm.files_reparsed == 0
        assert cold.failed and warm.failed

    def test_summary_roundtrips_through_json(self, tmp_path: Path) -> None:
        source = textwrap.dedent(
            """\
            # repro: lint-module[repro.serve.rt]
            import time
            from repro.serve.state import Store


            class Svc:
                def __init__(self, store: Store) -> None:
                    self.store = store

                def tick(self):  # repro: lint-ok[ASY003]
                    time.sleep(0)
                    self.store.load()
            """
        )
        path = tmp_path / "rt.py"
        path.write_text(source)
        mod = ModuleUnderLint(path, "rt.py", source)
        finding = LintFinding(
            file="rt.py",
            line=1,
            col=0,
            rule="DET001",
            severity=Severity.ERROR,
            message="m",
            hint="h",
        )
        summary = summarize(mod, file_digest(source.encode()), (finding,))
        encoded = json.dumps(summary_to_dict(summary), sort_keys=True)
        decoded = summary_from_dict(json.loads(encoded))
        assert decoded == summary

    def test_ruleset_signature_tracks_rules(self) -> None:
        full = ruleset_signature(select_rules(None))
        narrowed = ruleset_signature(
            select_rules(lambda rid: rid == "DET001")
        )
        assert full != narrowed
        assert ruleset_signature(select_rules(None)) == full

    def test_cache_prunes_entries_outside_the_lint_set(
        self, tmp_path: Path
    ) -> None:
        root = _write(tmp_path, {"a.py": _SERVE_A, "b.py": _SERVE_B_CLEAN})
        cache_dir = tmp_path / "cache"
        lint_paths([root], cache_dir=cache_dir)
        (root / "b.py").unlink()
        lint_paths([root], cache_dir=cache_dir)
        cache = AnalysisCache.open(cache_dir, select_rules(None))
        assert all("b.py" not in key for key in cache.entries)


# -- whole-program findings respect suppressions ------------------------------


def test_project_findings_respect_lint_ok_comments(tmp_path: Path) -> None:
    root = _write(
        tmp_path,
        {
            "a.py": """\
            # repro: lint-module[repro.serve.sup]
            import asyncio
            import time


            def blocker():
                time.sleep(1)


            async def handle():
                blocker()  # repro: lint-ok[ASY003]
                await asyncio.sleep(0)
            """
        },
    )
    report = lint_paths([root])
    assert report.findings == ()


# -- baseline -----------------------------------------------------------------


def _finding(file: str, line: int, rule: str, message: str) -> LintFinding:
    return LintFinding(
        file=file,
        line=line,
        col=0,
        rule=rule,
        severity=Severity.WARNING,
        message=message,
        hint="",
    )


class TestBaseline:
    def test_roundtrip_absorbs_recorded_findings(self, tmp_path: Path) -> None:
        path = tmp_path / "baseline.json"
        old = _finding("a.py", 3, "ASY003", "blocks via x")
        write_baseline(path, [old])
        baseline = load_baseline(path)
        shifted = _finding("a.py", 9, "ASY003", "blocks via x")  # moved lines
        new = _finding("a.py", 4, "ASY004", "rmw race")
        fresh, absorbed = apply_baseline([shifted, new], baseline)
        assert absorbed == 1
        assert fresh == (new,)

    def test_multiset_matching_absorbs_exact_counts(
        self, tmp_path: Path
    ) -> None:
        path = tmp_path / "baseline.json"
        one = _finding("a.py", 1, "ASY003", "same message")
        write_baseline(path, [one])
        dup = _finding("a.py", 8, "ASY003", "same message")
        fresh, absorbed = apply_baseline([one, dup], load_baseline(path))
        assert absorbed == 1 and len(fresh) == 1

    def test_bad_baseline_raises_value_error(self, tmp_path: Path) -> None:
        path = tmp_path / "baseline.json"
        path.write_text("[]")
        with pytest.raises(ValueError):
            load_baseline(path)
        with pytest.raises(ValueError):
            load_baseline(tmp_path / "missing.json")


# -- sarif --------------------------------------------------------------------


def test_sarif_export_shape(tmp_path: Path) -> None:
    root = _write(tmp_path, {"a.py": _SERVE_A, "b.py": _SERVE_B_BLOCKING})
    report = lint_paths([root])
    doc = to_sarif(report, select_rules(None))
    assert doc["version"] == "2.1.0"
    runs = doc["runs"]
    assert isinstance(runs, list) and len(runs) == 1
    run = runs[0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro.lint"
    rule_ids = [r["id"] for r in driver["rules"]]
    assert "ASY003" in rule_ids
    results = run["results"]
    assert results, "expected SARIF results"
    for result in results:
        assert result["level"] in ("error", "warning")
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1


def test_finding_from_dict_roundtrip() -> None:
    finding = _finding("x.py", 2, "ASY004", "race")
    assert LintFinding.from_dict(finding.as_dict()) == finding
