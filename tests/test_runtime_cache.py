"""Tests for the content-addressed run cache."""

from repro.core.protocols import NUDCProcess
from repro.model.context import make_process_ids
from repro.runtime import (
    EnsembleSpec,
    RunCache,
    RunSpec,
    SerialBackend,
    run_ensemble,
    run_spec,
)
from repro.sim.executor import ExecutionConfig
from repro.sim.failures import CrashPlan
from repro.sim.network import ChannelConfig
from repro.sim.process import uniform_protocol
from repro.workloads.generators import single_action

PROCS = make_process_ids(3)


def spec(seed=0, **overrides):
    fields = dict(
        processes=PROCS,
        protocol=uniform_protocol(NUDCProcess),
        crash_plan=CrashPlan.of({"p2": 5}),
        workload=single_action("p1", tick=1),
        seed=seed,
    )
    fields.update(overrides)
    return RunSpec(**fields)


class TestMemoryCache:
    def test_second_lookup_hits(self):
        cache = RunCache()
        first = run_spec(spec(), cache=cache)
        second = run_spec(spec(), cache=cache)
        assert first == second
        assert cache.hits == 1
        assert cache.misses == 1
        assert len(cache) == 1

    def test_different_specs_do_not_collide(self):
        cache = RunCache()
        a = run_spec(spec(seed=0), cache=cache)
        b = run_spec(spec(seed=1), cache=cache)
        assert a != b
        assert len(cache) == 2

    def test_unpicklable_specs_are_skipped_not_broken(self):
        cache = RunCache()
        config = ExecutionConfig(
            channel=ChannelConfig(blackhole=lambda s, r, m: False),
            validate=False,
        )
        run = run_spec(spec(config=config), cache=cache)
        again = run_spec(spec(config=config), cache=cache)
        assert run == again
        assert len(cache) == 0
        assert cache.skips > 0

    def test_clear(self):
        cache = RunCache()
        run_spec(spec(), cache=cache)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0


class TestDiskCache:
    def test_round_trip_across_cache_instances(self, tmp_path):
        first = RunCache(tmp_path)
        original = run_spec(spec(), cache=first)
        fresh = RunCache(tmp_path)  # cold memory, warm disk
        restored = fresh.get(spec())
        assert restored is not None
        assert fresh.hits == 1
        assert restored == original
        assert restored.meta["crash_plan"] == spec().crash_plan

    def test_disk_files_are_content_addressed(self, tmp_path):
        cache = RunCache(tmp_path)
        run_spec(spec(), cache=cache)
        files = list(tmp_path.glob("*.json"))
        assert [f.stem for f in files] == [spec().digest()]


class TestEnsembleCaching:
    def test_second_ensemble_is_all_hits(self):
        cache = RunCache()
        grid = EnsembleSpec(
            processes=PROCS,
            protocol=uniform_protocol(NUDCProcess),
            crash_plans=(CrashPlan.none(), CrashPlan.of({"p2": 5})),
            workload=single_action("p1", tick=1),
            seeds=(0, 1),
        )
        cold = run_ensemble(grid, backend=SerialBackend(), cache=cache)
        warm = run_ensemble(grid, backend=SerialBackend(), cache=cache)
        assert cold.cache_hits == 0
        assert warm.cache_hits == len(grid)
        assert warm.executed == 0
        assert all(m.cached for m in warm.metrics)
        assert list(warm.runs) == list(cold.runs)

    def test_cache_none_disables_caching(self):
        cache = RunCache()
        grid = [spec(seed=s) for s in (0, 1)]
        run_ensemble(grid, backend=SerialBackend(), cache=None)
        assert len(cache) == 0
