"""Tests for the experiment registry behind the CLIs."""

import pytest

from repro.harness import registry
from repro.harness.experiments import ALL_EXPERIMENTS
from repro.harness.results import ExperimentResult


class TestRegistryContents:
    def test_covers_all_experiments_plus_e09(self):
        assert set(registry.experiment_ids()) == set(ALL_EXPERIMENTS) | {"E09"}

    def test_ids_order_e_series_first(self):
        ids = registry.experiment_ids()
        e_series = [i for i in ids if i.startswith("E")]
        a_series = [i for i in ids if i.startswith("A")]
        assert ids == e_series + a_series
        assert e_series == sorted(e_series)
        assert a_series == sorted(a_series)

    def test_summaries_scraped_from_docstrings(self):
        exp = registry.get("E01")
        assert exp.summary  # first docstring line, non-empty
        assert "Prop 2.3" in exp.summary

    def test_describe_lists_every_id(self):
        text = registry.describe()
        for exp_id in registry.experiment_ids():
            assert exp_id in text


class TestLookup:
    def test_case_insensitive(self):
        assert registry.get("e09").exp_id == "E09"
        assert registry.get("a14").exp_id == "A14"

    def test_unknown_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            registry.get("E99")

    def test_run_executes_the_runner(self):
        result = registry.run("A14")
        assert isinstance(result, ExperimentResult)
        assert result.exp_id == "A14"


class TestRegister:
    def test_custom_registration(self):
        def run_x99():
            """A probe experiment."""
            return ExperimentResult("X99", "t", "c", passed=True)

        try:
            exp = registry.register("x99", run_x99)
            assert exp.exp_id == "X99"
            assert exp.summary == "A probe experiment."
            assert registry.run("x99").passed
        finally:
            registry._REGISTRY.pop("X99", None)
