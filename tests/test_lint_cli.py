"""Tests for the ``harness lint`` CLI: exit codes, JSON stability,
rule selection, and the harness dispatch wiring."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.lint.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
CLEAN = FIXTURES / "clean"
REPO = Path(__file__).parent.parent


def test_clean_tree_exits_zero(capsys) -> None:
    assert main([str(CLEAN)]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s)" in out


def test_fixture_tree_exits_one(capsys) -> None:
    assert main([str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "error(s)" in out


def test_json_output_is_stable_and_structured(capsys) -> None:
    assert main([str(FIXTURES), "--format", "json"]) == 1
    first = capsys.readouterr().out
    assert main([str(FIXTURES), "--format", "json"]) == 1
    second = capsys.readouterr().out
    assert first == second  # byte-stable across runs

    payload = json.loads(first)
    assert payload["version"] == 1
    assert payload["failed"] is True
    assert payload["parse_errors"] == []
    assert payload["files_scanned"] >= len(list(FIXTURES.glob("*.py")))
    assert payload["counts"]["DET001"] >= 6
    finding = payload["findings"][0]
    assert set(finding) == {
        "file", "line", "col", "rule", "severity", "message", "hint",
    }
    keys = [(f["file"], f["line"], f["col"], f["rule"]) for f in payload["findings"]]
    assert keys == sorted(keys)


def test_select_single_rule(capsys) -> None:
    assert main([str(FIXTURES), "--select", "POOL002", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["counts"]) == {"POOL002"}


def test_select_warning_only_rule_exits_zero(capsys) -> None:
    # POOL003 is WARNING severity: findings are reported, exit stays 0
    assert main([str(FIXTURES), "--select", "POOL003"]) == 0
    out = capsys.readouterr().out
    assert "POOL003" in out and "0 error(s)" in out


def test_select_unknown_rule_is_usage_error(capsys) -> None:
    assert main([str(FIXTURES), "--select", "BOGUS9"]) == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_missing_path_is_usage_error(capsys) -> None:
    assert main([str(FIXTURES / "does_not_exist")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_list_rules_catalog(capsys) -> None:
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DET004", "POOL001", "INV003", "LNT001"):
        assert rule_id in out


def test_suppressed_file_is_clean(capsys) -> None:
    assert main([str(FIXTURES / "suppressed_clean.py")]) == 0


def test_unparseable_file_fails(tmp_path, capsys) -> None:
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    assert main([str(bad)]) == 1
    assert "parse error" in capsys.readouterr().out


def test_default_path_is_src_repro(capsys, monkeypatch) -> None:
    monkeypatch.chdir(REPO)
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_harness_dispatch() -> None:
    """``python -m repro.harness lint`` reaches the lint CLI."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.harness", "lint", str(CLEAN)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 error(s)" in proc.stdout
