"""Tests for the ``harness lint`` CLI: exit codes, JSON stability,
rule selection, and the harness dispatch wiring."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.lint.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
CLEAN = FIXTURES / "clean"
REPO = Path(__file__).parent.parent


def test_clean_tree_exits_zero(capsys) -> None:
    assert main([str(CLEAN)]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s)" in out


def test_fixture_tree_exits_one(capsys) -> None:
    assert main([str(FIXTURES)]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "error(s)" in out


def test_json_output_is_stable_and_structured(capsys) -> None:
    assert main([str(FIXTURES), "--format", "json"]) == 1
    first = capsys.readouterr().out
    assert main([str(FIXTURES), "--format", "json"]) == 1
    second = capsys.readouterr().out
    assert first == second  # byte-stable across runs

    payload = json.loads(first)
    assert payload["version"] == 1
    assert payload["failed"] is True
    assert payload["parse_errors"] == []
    assert payload["files_scanned"] >= len(list(FIXTURES.glob("*.py")))
    assert payload["counts"]["DET001"] >= 6
    finding = payload["findings"][0]
    assert set(finding) == {
        "file", "line", "col", "rule", "severity", "message", "hint",
    }
    keys = [(f["file"], f["line"], f["col"], f["rule"]) for f in payload["findings"]]
    assert keys == sorted(keys)


def test_select_single_rule(capsys) -> None:
    assert main([str(FIXTURES), "--select", "POOL002", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["counts"]) == {"POOL002"}


def test_select_warning_only_rule_exits_zero(capsys) -> None:
    # POOL003 is WARNING severity: findings are reported, exit stays 0
    assert main([str(FIXTURES), "--select", "POOL003"]) == 0
    out = capsys.readouterr().out
    assert "POOL003" in out and "0 error(s)" in out


def test_select_unknown_rule_is_usage_error(capsys) -> None:
    assert main([str(FIXTURES), "--select", "BOGUS9"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule id" in err
    # the error lists the valid catalog so the fix is one copy-paste away
    assert "DET001" in err and "ASY003" in err


def test_select_empty_spec_is_usage_error(capsys) -> None:
    assert main([str(FIXTURES), "--select", ","]) == 2
    err = capsys.readouterr().err
    assert "no rule ids" in err and "DET001" in err


def test_bad_jobs_is_usage_error(capsys) -> None:
    assert main([str(FIXTURES), "--jobs", "0"]) == 2
    assert "--jobs" in capsys.readouterr().err


def test_update_baseline_without_baseline_is_usage_error(capsys) -> None:
    assert main([str(FIXTURES), "--update-baseline"]) == 2
    assert "--baseline" in capsys.readouterr().err


def test_unreadable_baseline_is_usage_error(tmp_path, capsys) -> None:
    bad = tmp_path / "baseline.json"
    bad.write_text("not json")
    assert main([str(FIXTURES), "--baseline", str(bad)]) == 2
    assert "baseline" in capsys.readouterr().err


def test_missing_path_is_usage_error(capsys) -> None:
    assert main([str(FIXTURES / "does_not_exist")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_list_rules_catalog(capsys) -> None:
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DET004", "POOL001", "INV003", "LNT001"):
        assert rule_id in out


def test_suppressed_file_is_clean(capsys) -> None:
    assert main([str(FIXTURES / "suppressed_clean.py")]) == 0


def test_unparseable_file_fails(tmp_path, capsys) -> None:
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    assert main([str(bad)]) == 1
    assert "parse error" in capsys.readouterr().out


def test_default_path_is_src_repro(capsys, monkeypatch) -> None:
    monkeypatch.chdir(REPO)
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_sarif_output_is_valid_and_stable(capsys) -> None:
    assert main([str(FIXTURES), "--format", "sarif"]) == 1
    first = capsys.readouterr().out
    assert main([str(FIXTURES), "--format", "sarif"]) == 1
    second = capsys.readouterr().out
    assert first == second
    doc = json.loads(first)
    assert doc["version"] == "2.1.0"
    results = doc["runs"][0]["results"]
    assert results and all("ruleId" in r for r in results)


def test_baseline_workflow_roundtrip(tmp_path, capsys) -> None:
    fixture = FIXTURES / "asy003_transitive_blocking.py"
    baseline = tmp_path / "lint-baseline.json"
    # record the current findings...
    assert main([str(fixture), "--baseline", str(baseline), "--update-baseline"]) == 0
    capsys.readouterr()
    # ...then a run against the baseline reports nothing new
    assert main([str(fixture), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "(1 baselined)" in out and "0 warning(s)" in out
    # without the baseline the finding is still reported
    assert main([str(fixture), "--format", "json"]) == 0  # warning severity
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"] == {"ASY003": 1}


def test_cache_dir_flag_runs_warm(tmp_path, capsys) -> None:
    cache = tmp_path / "cache"
    assert main([str(CLEAN), "--cache-dir", str(cache), "--stats"]) == 0
    first = capsys.readouterr()
    assert "0 hit(s)" in first.err
    assert main([str(CLEAN), "--cache-dir", str(cache), "--stats"]) == 0
    second = capsys.readouterr()
    assert "0 file(s) re-parsed" in second.err
    assert first.out == second.out  # cache never changes the verdict


def test_harness_dispatch() -> None:
    """``python -m repro.harness lint`` reaches the lint CLI."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.harness", "lint", str(CLEAN)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 error(s)" in proc.stdout
