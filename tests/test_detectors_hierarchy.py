"""Tests for the detector-class hierarchy and conversion graph."""

import pytest

from repro.core.protocols import StrongFDUDCProcess
from repro.detectors.atd import AtdRotatingOracle
from repro.detectors.hierarchy import (
    BY_NAME,
    CLASS_ORDER,
    classify_system,
    conversion_graph,
    convertible,
    satisfied_classes,
    strongest_class,
)
from repro.detectors.standard import (
    ImpermanentStrongOracle,
    ImpermanentWeakOracle,
    LyingOracle,
    PerfectOracle,
    StrongOracle,
    WeakOracle,
)
from repro.model.context import make_process_ids
from repro.model.system import System
from repro.sim.executor import Executor
from repro.sim.failures import CrashPlan
from repro.sim.process import uniform_protocol
from repro.workloads.generators import post_crash_workload, single_action

PROCS = make_process_ids(4)
PLAN = CrashPlan.of({"p2": 5, "p4": 12})


def run_with(detector, seed=0):
    workload = single_action("p1", tick=1) + post_crash_workload(
        PROCS, PLAN, actions_per_survivor=1
    )
    return Executor(
        PROCS,
        uniform_protocol(StrongFDUDCProcess),
        crash_plan=PLAN,
        workload=workload,
        detector=detector,
        seed=seed,
    ).run()


class TestClassification:
    def test_perfect_oracle_classified_perfect(self):
        assert strongest_class(run_with(PerfectOracle())) == "perfect"

    def test_strong_oracle_classified_strong(self):
        # Find a run where the false positives actually fired.
        results = {
            strongest_class(run_with(StrongOracle(false_positive_rate=0.6), s))
            for s in range(5)
        }
        assert "strong" in results

    def test_weak_oracle_classified_weak(self):
        assert strongest_class(run_with(WeakOracle())) == "weak"

    def test_impermanent_oracles(self):
        assert (
            strongest_class(run_with(ImpermanentStrongOracle(retract_after=4)))
            == "impermanent-strong"
        )
        assert (
            strongest_class(run_with(ImpermanentWeakOracle(retract_after=4)))
            == "impermanent-weak"
        )

    def test_lying_oracle_unclassified(self):
        results = [strongest_class(run_with(LyingOracle(), s)) for s in range(4)]
        assert None in results

    def test_satisfied_classes_ordered_strongest_first(self):
        names = satisfied_classes(run_with(PerfectOracle()))
        assert names[0] == "perfect"
        order = [cls.name for cls in CLASS_ORDER]
        assert names == [n for n in order if n in names]

    def test_classify_system_takes_worst_run(self):
        system = System(
            [run_with(PerfectOracle()), run_with(WeakOracle(), seed=1)]
        )
        assert classify_system(system) == "weak"


class TestConversionGraph:
    def test_graph_nodes_match_classes(self):
        graph = conversion_graph()
        assert set(graph.nodes) == set(BY_NAME)

    def test_paper_conversions_compose(self):
        # Cor 3.2's pipeline: impermanent-weak reaches strong.
        assert convertible("impermanent-weak", "strong")

    def test_no_free_lunch_to_perfect(self):
        # Strong accuracy cannot be manufactured by conversion (it takes
        # context assumptions: Prop 3.4 needs A1 + A5_{n-1}).
        for source in ("strong", "weak", "impermanent-weak", "atd"):
            assert not convertible(source, "perfect")

    def test_perfect_reaches_everything(self):
        for target in BY_NAME:
            assert convertible("perfect", target)

    def test_reflexive(self):
        assert convertible("weak", "weak")

    def test_unknown_class_rejected(self):
        with pytest.raises(KeyError):
            convertible("perfect", "psychic")

    def test_weak_strong_equivalence_class(self):
        # Props 2.1 + 2.2 make {strong, weak, imp-strong, imp-weak}
        # mutually reachable.
        group = ["strong", "weak", "impermanent-strong", "impermanent-weak"]
        for a in group:
            for b in group:
                assert convertible(a, b), (a, b)


class TestAtdClassification:
    def test_atd_runs_classified(self):
        oracle = AtdRotatingOracle(rotation_period=10)
        run = run_with(oracle)
        names = satisfied_classes(run)
        assert "atd" in names
