"""Tests for the Chandra-Toueg consensus baselines (Table 1's consensus rows)."""

import pytest

from repro.core.consensus import (
    RotatingCoordinatorConsensus,
    StrongConsensusProcess,
    check_consensus,
    consensus_factory,
    consensus_outcome,
    decide_action,
)
from repro.detectors.base import NoDetector
from repro.detectors.standard import (
    EventuallyWeakOracle,
    PerfectOracle,
    StrongOracle,
)
from repro.model.context import ChannelSemantics, make_process_ids
from repro.sim.executor import ExecutionConfig, Executor
from repro.sim.failures import CrashPlan, staggered_plan
from repro.sim.network import ChannelConfig
from repro.model.run import Run
from repro.model.events import DoEvent

PROCS = make_process_ids(5)
VALUES = {p: f"v{i % 2}" for i, p in enumerate(PROCS)}
RELIABLE = ExecutionConfig(channel=ChannelConfig(semantics=ChannelSemantics.RELIABLE))


def run_consensus(cls, detector, plan=CrashPlan.none(), seed=0, config=None, **kwargs):
    return Executor(
        PROCS,
        consensus_factory(cls, VALUES, **kwargs),
        crash_plan=plan,
        detector=detector,
        config=config or ExecutionConfig(max_ticks=3000),
        seed=seed,
    ).run()


class TestStrongConsensus:
    @pytest.mark.parametrize("seed", range(4))
    def test_failure_free(self, seed):
        run = run_consensus(StrongConsensusProcess, StrongOracle(), seed=seed)
        assert check_consensus(run, VALUES)

    @pytest.mark.parametrize("seed", range(4))
    def test_tolerates_n_minus_1_failures(self, seed):
        plan = staggered_plan(PROCS, ["p2", "p3", "p4", "p5"], first_tick=4)
        run = run_consensus(StrongConsensusProcess, StrongOracle(), plan, seed)
        assert check_consensus(run, VALUES)

    def test_reliable_channels_also_work(self):
        plan = CrashPlan.of({"p4": 6})
        run = run_consensus(
            StrongConsensusProcess, StrongOracle(), plan, config=RELIABLE
        )
        assert check_consensus(run, VALUES)

    def test_uniform_agreement_across_seeds(self):
        plan = CrashPlan.of({"p2": 8, "p5": 14})
        for seed in range(6):
            run = run_consensus(StrongConsensusProcess, PerfectOracle(), plan, seed)
            outcome = consensus_outcome(run)
            assert len(set(outcome.values())) == 1

    def test_validity(self):
        run = run_consensus(StrongConsensusProcess, StrongOracle())
        outcome = consensus_outcome(run)
        assert set(outcome.values()) <= set(VALUES.values())


class TestRotatingCoordinator:
    @pytest.mark.parametrize("seed", range(4))
    def test_majority_correct_with_eventually_weak(self, seed):
        plan = CrashPlan.of({"p4": 6, "p5": 10})  # t = 2 < n/2
        run = run_consensus(
            RotatingCoordinatorConsensus,
            EventuallyWeakOracle(stabilization_tick=30),
            plan,
            seed,
        )
        assert check_consensus(run, VALUES)

    def test_no_detector_stalls_on_dead_coordinator(self):
        # FLP face: round 0's coordinator crashes unsuspectably.
        plan = CrashPlan.of({"p1": 2})
        run = run_consensus(
            RotatingCoordinatorConsensus,
            NoDetector(),
            plan,
            config=ExecutionConfig(max_ticks=600),
        )
        assert consensus_outcome(run) == {}

    def test_majority_loss_stalls(self):
        # t >= n/2: the coordinator can never assemble a majority.
        plan = staggered_plan(PROCS, ["p3", "p4", "p5"], first_tick=2, spacing=1)
        run = run_consensus(
            RotatingCoordinatorConsensus,
            EventuallyWeakOracle(stabilization_tick=20),
            plan,
            config=ExecutionConfig(max_ticks=600),
        )
        assert not check_consensus(run, VALUES)

    def test_decision_propagates_to_late_processes(self):
        run = run_consensus(
            RotatingCoordinatorConsensus,
            EventuallyWeakOracle(stabilization_tick=10),
        )
        outcome = consensus_outcome(run)
        assert set(outcome) >= run.correct()

    def test_agreement_with_noisy_prefix(self):
        # Wrong suspicions before stabilization cause wasted rounds but
        # never disagreement (quorum locking).
        for seed in range(6):
            run = run_consensus(
                RotatingCoordinatorConsensus,
                EventuallyWeakOracle(stabilization_tick=45, noise_rate=0.6),
                CrashPlan.of({"p2": 7}),
                seed,
            )
            outcome = consensus_outcome(run)
            assert len(set(outcome.values())) <= 1


class TestOutcomeCheckers:
    def test_consensus_outcome_reads_decides(self):
        run = Run(
            ("p1", "p2"),
            {
                "p1": [(3, DoEvent("p1", decide_action("v0")))],
                "p2": [],
            },
            duration=5,
        )
        assert consensus_outcome(run) == {"p1": "v0"}

    def test_check_consensus_requires_termination(self):
        run = Run(("p1", "p2"), {"p1": [], "p2": []}, duration=5)
        verdict = check_consensus(run, {"p1": "v0", "p2": "v1"})
        assert not verdict and "never decided" in verdict.witness

    def test_check_consensus_flags_disagreement(self):
        run = Run(
            ("p1", "p2"),
            {
                "p1": [(3, DoEvent("p1", decide_action("v0")))],
                "p2": [(3, DoEvent("p2", decide_action("v1")))],
            },
            duration=5,
        )
        verdict = check_consensus(run, {"p1": "v0", "p2": "v1"})
        assert not verdict and "conflicting" in verdict.witness

    def test_check_consensus_flags_invalid_value(self):
        run = Run(
            ("p1", "p2"),
            {
                "p1": [(3, DoEvent("p1", decide_action("vX")))],
                "p2": [(3, DoEvent("p2", decide_action("vX")))],
            },
            duration=5,
        )
        verdict = check_consensus(run, {"p1": "v0", "p2": "v1"})
        assert not verdict and "never proposed" in verdict.witness
