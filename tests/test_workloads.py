"""Unit tests for workload generators."""

import random

from repro.model.context import make_process_ids
from repro.sim.failures import CrashPlan
from repro.workloads.generators import (
    action_id,
    burst_workload,
    initiator_of,
    post_crash_workload,
    single_action,
    stream_workload,
)

PROCS = make_process_ids(4)


class TestActionIds:
    def test_tagged_by_initiator(self):
        a = action_id("p2", "x")
        assert initiator_of(a) == "p2"

    def test_disjointness_across_processes(self):
        # A_p and A_q disjoint (Section 2.4): same name, different owner.
        assert action_id("p1", "x") != action_id("p2", "x")


class TestSingleAction:
    def test_shape(self):
        wl = single_action("p1", tick=3, name="z")
        assert wl == [(3, "p1", ("p1", "z"))]


class TestBurst:
    def test_counts(self):
        wl = burst_workload(PROCS, actions_per_process=2)
        assert len(wl) == 8
        assert len({a for _, _, a in wl}) == 8

    def test_sorted(self):
        wl = burst_workload(PROCS, tick=4)
        assert wl == sorted(wl)


class TestStream:
    def test_spacing_and_count(self):
        wl = stream_workload(PROCS, count=5, spacing=3, start_tick=2)
        assert len(wl) == 5
        ticks = [t for t, _, _ in wl]
        assert ticks == [2, 5, 8, 11, 14]

    def test_unique_actions(self):
        wl = stream_workload(PROCS, count=10)
        assert len({a for _, _, a in wl}) == 10

    def test_deterministic_with_rng(self):
        a = stream_workload(PROCS, count=6, rng=random.Random(1))
        b = stream_workload(PROCS, count=6, rng=random.Random(1))
        assert a == b


class TestPostCrash:
    def test_starts_after_last_crash(self):
        plan = CrashPlan.of({"p2": 9, "p4": 17})
        wl = post_crash_workload(PROCS, plan, lead=5)
        assert min(t for t, _, _ in wl) == 22

    def test_only_survivors_initiate(self):
        plan = CrashPlan.of({"p2": 9})
        wl = post_crash_workload(PROCS, plan)
        initiators = {p for _, p, _ in wl}
        assert initiators == {"p1", "p3", "p4"}

    def test_failure_free_plan(self):
        wl = post_crash_workload(PROCS, CrashPlan.none(), actions_per_survivor=1)
        assert {p for _, p, _ in wl} == set(PROCS)

    def test_rounds_counted(self):
        plan = CrashPlan.of({"p2": 9})
        wl = post_crash_workload(PROCS, plan, actions_per_survivor=3)
        assert len(wl) == 9  # 3 survivors x 3 rounds
