"""Tests for the declarative specs: RunSpec, EnsembleSpec, digests."""

import pickle

import pytest

from repro.core.protocols import NUDCProcess, StrongFDUDCProcess
from repro.detectors.standard import PerfectOracle
from repro.model.context import ChannelSemantics, make_process_ids
from repro.runtime import EnsembleSpec, RunSpec, spec_digest
from repro.sim.executor import ExecutionConfig
from repro.sim.failures import CrashPlan, all_crash_plans
from repro.sim.network import ChannelConfig
from repro.sim.process import uniform_protocol
from repro.workloads.generators import post_crash_workload, single_action

PROCS = make_process_ids(3)


def basic_spec(**overrides):
    fields = dict(
        processes=PROCS,
        protocol=uniform_protocol(NUDCProcess),
        crash_plan=CrashPlan.of({"p2": 5}),
        workload=single_action("p1", tick=1),
        seed=3,
    )
    fields.update(overrides)
    return RunSpec(**fields)


class TestRunSpec:
    def test_normalizes_to_tuples(self):
        spec = RunSpec(
            processes=list(PROCS),
            protocol=uniform_protocol(NUDCProcess),
            workload=list(single_action("p1", tick=1)),
        )
        assert isinstance(spec.processes, tuple)
        assert isinstance(spec.workload, tuple)

    def test_workload_order_is_canonical(self):
        a = basic_spec(
            workload=single_action("p1", tick=1) + single_action("p2", tick=4)
        )
        b = basic_spec(
            workload=single_action("p2", tick=4) + single_action("p1", tick=1)
        )
        assert a == b
        assert hash(a) == hash(b)

    def test_rejects_empty_processes(self):
        with pytest.raises(ValueError, match="at least one process"):
            RunSpec(processes=(), protocol=uniform_protocol(NUDCProcess))

    def test_rejects_unknown_crash_victims(self):
        with pytest.raises(ValueError, match="unknown processes"):
            basic_spec(crash_plan=CrashPlan.of({"p9": 5}))

    def test_with_replaces_fields(self):
        spec = basic_spec()
        other = spec.with_(seed=7)
        assert other.seed == 7
        assert other.with_(seed=3) == spec

    def test_specs_are_hashable_and_equal_by_value(self):
        assert basic_spec() == basic_spec()
        assert len({basic_spec(), basic_spec(), basic_spec(seed=9)}) == 2


class TestSpecDigest:
    def test_stable_across_reconstruction(self):
        assert basic_spec().digest() == basic_spec().digest()

    def test_every_field_is_part_of_the_key(self):
        base = basic_spec()
        variants = [
            base.with_(seed=99),
            base.with_(crash_plan=CrashPlan.none()),
            base.with_(workload=()),
            base.with_(protocol=uniform_protocol(StrongFDUDCProcess)),
            base.with_(detector=PerfectOracle()),
            base.with_(
                config=ExecutionConfig(
                    channel=ChannelConfig(semantics=ChannelSemantics.RELIABLE)
                )
            ),
        ]
        digests = {spec_digest(s) for s in [base, *variants]}
        assert None not in digests
        assert len(digests) == len(variants) + 1

    def test_default_config_digests_like_explicit_default(self):
        assert basic_spec(config=None).digest() == basic_spec(
            config=ExecutionConfig()
        ).digest()

    def test_unpicklable_spec_has_no_digest(self):
        config = ExecutionConfig(
            channel=ChannelConfig(blackhole=lambda s, r, m: False)
        )
        assert spec_digest(basic_spec(config=config)) is None


class TestEnsembleSpec:
    def test_len_is_plans_times_seeds(self):
        spec = EnsembleSpec(
            processes=PROCS,
            protocol=uniform_protocol(NUDCProcess),
            crash_plans=(CrashPlan.none(), CrashPlan.of({"p2": 5})),
            workload=single_action("p1", tick=1),
            seeds=(0, 1, 2),
        )
        assert len(spec) == 6
        assert len(spec.expand()) == 6

    def test_expand_is_plan_major_seed_minor(self):
        plans = (CrashPlan.none(), CrashPlan.of({"p2": 5}))
        spec = EnsembleSpec(
            processes=PROCS,
            protocol=uniform_protocol(NUDCProcess),
            crash_plans=plans,
            workload=single_action("p1", tick=1),
            seeds=(0, 1),
        )
        grid = [(s.crash_plan, s.seed) for s in spec.expand()]
        assert grid == [
            (plans[0], 0), (plans[0], 1), (plans[1], 0), (plans[1], 1),
        ]

    def test_callable_workload_gets_the_plan(self):
        plan = CrashPlan.of({"p2": 5})
        spec = EnsembleSpec(
            processes=PROCS,
            protocol=uniform_protocol(StrongFDUDCProcess),
            crash_plans=(CrashPlan.none(), plan),
            workload=lambda p: post_crash_workload(PROCS, p, actions_per_survivor=1),
            seeds=(0,),
        )
        expanded = spec.expand()
        assert expanded[0].workload != expanded[1].workload

    def test_a5t_covers_every_pattern(self):
        spec = EnsembleSpec.a5t(
            PROCS,
            uniform_protocol(NUDCProcess),
            t=2,
            workload=single_action("p1", tick=1),
            seeds=(0,),
        )
        expected = {p.faulty for p in all_crash_plans(PROCS, max_failures=2)}
        assert {s.crash_plan.faulty for s in spec.expand()} == expected


class TestPickleRoundTrips:
    def test_crash_plan(self):
        plan = CrashPlan.of({"p1": 4, "p3": 9})
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_run_spec(self):
        spec = basic_spec(detector=PerfectOracle())
        clone = pickle.loads(pickle.dumps(spec))
        # Oracles compare by identity, so compare the detector-free view
        # by value and the full spec by content digest.
        assert clone.with_(detector=None) == spec.with_(detector=None)
        assert type(clone.detector) is type(spec.detector)
        assert clone.digest() == spec.digest()

    def test_run(self):
        from repro.runtime import run_spec

        run = run_spec(basic_spec(), cache=None)
        clone = pickle.loads(pickle.dumps(run))
        assert clone == run
        assert clone.meta == run.meta
        assert clone.duration == run.duration
