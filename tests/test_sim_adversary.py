"""Tests for the extended adversary: transient partitions and the
activation (process-speed) adversary."""

import pytest

from repro.core.properties import nudc_holds, udc_holds
from repro.core.protocols import NUDCProcess, StrongFDUDCProcess
from repro.detectors.standard import PerfectOracle
from repro.harness.stats import completion_latency
from repro.model.context import make_process_ids
from repro.model.events import Message, ReceiveEvent
from repro.sim.executor import ExecutionConfig, Executor
from repro.sim.failures import CrashPlan
from repro.sim.network import ChannelConfig, FairLossyChannel, Partition
from repro.sim.process import uniform_protocol
from repro.workloads.generators import single_action

import random

PROCS = make_process_ids(4)
ACTION = ("p1", "a0")


class TestPartitionUnit:
    def test_severs_only_cross_boundary_during_window(self):
        part = Partition(5, 15, frozenset({"p1", "p2"}))
        assert part.severs("p1", "p3", 5)
        assert part.severs("p3", "p1", 14)
        assert not part.severs("p1", "p2", 10)  # same side
        assert not part.severs("p3", "p4", 10)  # same side
        assert not part.severs("p1", "p3", 4)  # before
        assert not part.severs("p1", "p3", 15)  # after (half-open)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            Partition(5, 5, frozenset({"p1"}))

    def test_channel_drops_cross_messages(self):
        rng = random.Random(0)
        ch = FairLossyChannel(
            rng,
            drop_prob=0.0,
            partitions=(Partition(0, 100, frozenset({"p1"})),),
        )
        ch.submit("p1", "p2", Message("m"), tick=10)
        ch.submit("p2", "p1", Message("m"), tick=10)
        assert ch.in_flight_to(PROCS) == 0
        assert ch.dropped_count == 2

    def test_channel_heals(self):
        rng = random.Random(0)
        ch = FairLossyChannel(
            rng,
            drop_prob=0.0,
            partitions=(Partition(0, 10, frozenset({"p1"})),),
        )
        ch.submit("p1", "p2", Message("m"), tick=12)
        assert ch.in_flight_to(["p2"]) == 1

    def test_partition_drops_exempt_from_budget(self):
        rng = random.Random(0)
        ch = FairLossyChannel(
            rng,
            drop_prob=0.999999,
            max_consecutive_drops=2,
            partitions=(Partition(0, 100, frozenset({"p1"})),),
        )
        for i in range(10):
            ch.submit("p1", "p2", Message("m"), tick=i)
        assert ch.in_flight_to(["p2"]) == 0  # never forced through


class TestProtocolsUnderPartition:
    def partition_config(self, start=4, end=30):
        return ExecutionConfig(
            channel=ChannelConfig(
                drop_prob=0.2,
                partitions=(Partition(start, end, frozenset({"p1", "p2"})),),
            ),
            # The finite-R5 heuristic flags sends swallowed by an active
            # partition; on the infinite extension retransmission
            # continues past healing, so we keep generous budgets and
            # check liveness directly instead.
            validate=False,
        )

    def test_nudc_survives_partition(self):
        for seed in range(4):
            run = Executor(
                PROCS,
                uniform_protocol(NUDCProcess, resend_rounds=60),
                workload=single_action("p1", tick=1),
                config=self.partition_config(),
                seed=seed,
            ).run()
            assert nudc_holds(run), nudc_holds(run).witness

    def test_udc_survives_partition(self):
        for seed in range(4):
            run = Executor(
                PROCS,
                uniform_protocol(StrongFDUDCProcess, resend_rounds=60),
                crash_plan=CrashPlan.of({"p4": 10}),
                workload=single_action("p1", tick=1),
                detector=PerfectOracle(),
                config=self.partition_config(),
                seed=seed,
            ).run()
            assert udc_holds(run), udc_holds(run).witness

    def test_partition_delays_completion(self):
        def latency(config):
            run = Executor(
                PROCS,
                uniform_protocol(StrongFDUDCProcess, resend_rounds=60),
                workload=single_action("p1", tick=1),
                detector=PerfectOracle(),
                config=config,
                seed=2,
            ).run()
            return completion_latency(run, ACTION)

        smooth = ExecutionConfig(
            channel=ChannelConfig(drop_prob=0.2), validate=False
        )
        partitioned = self.partition_config(start=2, end=40)
        assert latency(partitioned) > latency(smooth)

    def test_no_cross_deliveries_during_partition(self):
        run = Executor(
            PROCS,
            uniform_protocol(NUDCProcess, resend_rounds=60),
            workload=single_action("p1", tick=1),
            config=self.partition_config(start=1, end=25),
            seed=0,
        ).run()
        group = {"p1", "p2"}
        for p in PROCS:
            for t, e in run.timeline(p):
                if isinstance(e, ReceiveEvent) and t < 25:
                    # Delivered before healing => must have been sent
                    # before the partition started or within a side.
                    crossed = (e.sender in group) != (e.receiver in group)
                    if crossed:
                        sent_before = any(
                            ts < 1
                            for ts, se in run.timeline(e.sender)
                            if getattr(se, "receiver", None) == e.receiver
                            and getattr(se, "message", None) == e.message
                        )
                        assert sent_before


class TestActivationAdversary:
    def slow_config(self):
        return ExecutionConfig(activation_prob=0.5, max_consecutive_skips=5)

    def test_protocols_correct_under_slow_scheduling(self):
        for seed in range(4):
            run = Executor(
                PROCS,
                uniform_protocol(StrongFDUDCProcess),
                crash_plan=CrashPlan.of({"p3": 8}),
                workload=single_action("p1", tick=1),
                detector=PerfectOracle(),
                config=self.slow_config(),
                seed=seed,
            ).run()
            assert udc_holds(run), udc_holds(run).witness

    def test_slow_scheduling_costs_time(self):
        def latency(config):
            run = Executor(
                PROCS,
                uniform_protocol(StrongFDUDCProcess),
                workload=single_action("p1", tick=1),
                detector=PerfectOracle(),
                config=config,
                seed=5,
            ).run()
            return completion_latency(run, ACTION)

        assert latency(self.slow_config()) > latency(ExecutionConfig())

    def test_deterministic_under_skips(self):
        def once():
            return Executor(
                PROCS,
                uniform_protocol(NUDCProcess),
                workload=single_action("p1", tick=1),
                config=self.slow_config(),
                seed=11,
            ).run()

        assert once() == once()

    def test_full_activation_matches_default(self):
        # activation_prob=1.0 must not consume extra randomness.
        explicit = ExecutionConfig(activation_prob=1.0)
        a = Executor(
            PROCS,
            uniform_protocol(NUDCProcess),
            workload=single_action("p1", tick=1),
            config=explicit,
            seed=3,
        ).run()
        b = Executor(
            PROCS,
            uniform_protocol(NUDCProcess),
            workload=single_action("p1", tick=1),
            seed=3,
        ).run()
        assert a == b
