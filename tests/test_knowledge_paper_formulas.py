"""Direct unit tests for the paper's formula builders."""

from repro.knowledge.formulas import And, Implies, Knows
from repro.knowledge.paper_formulas import (
    dc1_formula,
    dc2_formula,
    dc2_prime_formula,
    dc3_formula,
    knows_crashed,
    prop_3_5,
)
from repro.knowledge.semantics import ModelChecker
from repro.model.events import CrashEvent, DoEvent, InitEvent
from repro.model.run import Run
from repro.model.system import System

PROCS = ("p1", "p2", "p3")
A = ("p1", "a")


def system_of(*runs):
    return System(list(runs))


def run_all_do():
    return Run(
        PROCS,
        {
            "p1": [(1, InitEvent("p1", A)), (3, DoEvent("p1", A))],
            "p2": [(5, DoEvent("p2", A))],
            "p3": [(6, DoEvent("p3", A))],
        },
        duration=8,
    )


def run_partial_do():
    return Run(
        PROCS,
        {
            "p1": [(1, InitEvent("p1", A)), (3, DoEvent("p1", A))],
            "p2": [],
            "p3": [(6, DoEvent("p3", A))],
        },
        duration=8,
    )


class TestStructure:
    def test_dc2_has_n_squared_clauses(self):
        f = dc2_formula(PROCS, A)
        assert isinstance(f, And)
        assert len(f.parts) == 9

    def test_dc3_has_n_clauses(self):
        f = dc3_formula(PROCS, A)
        assert len(f.parts) == 3

    def test_dc1_is_implication(self):
        assert isinstance(dc1_formula(A), Implies)

    def test_prop_3_5_shape(self):
        f = prop_3_5(PROCS, "p2", A)
        assert isinstance(f, Implies)
        assert isinstance(f.antecedent, Knows)
        assert f.antecedent.process == "p2"
        assert isinstance(f.consequent, Knows)

    def test_knows_crashed(self):
        f = knows_crashed("p1", "p3")
        assert isinstance(f, Knows)
        assert f.process == "p1"
        assert "crash(p3)" in f.label()


class TestSemantics:
    def test_dc2_distinguishes_runs(self):
        good = run_all_do()
        bad = run_partial_do()
        mc = ModelChecker(system_of(good, bad))
        from repro.model.run import Point

        f = dc2_formula(PROCS, A)
        # The implication is vacuous before any do event; the validity
        # bites at points where some process has performed.
        assert mc.holds(f, Point(good, 0))
        assert mc.holds(f, Point(good, 3))
        assert mc.holds(f, Point(bad, 0))  # vacuously: nobody has done yet
        assert not mc.holds(f, Point(bad, 3))  # p1 did; p2 never will

    def test_dc2_prime_excuses_crash(self):
        excused = Run(
            PROCS,
            {
                "p1": [
                    (1, InitEvent("p1", A)),
                    (3, DoEvent("p1", A)),
                    (4, CrashEvent("p1")),
                ],
                "p2": [],
                "p3": [],
            },
            duration=8,
        )
        mc = ModelChecker(system_of(excused))
        from repro.model.run import Point

        assert not mc.holds(dc2_formula(PROCS, A), Point(excused, 3))
        assert mc.holds(dc2_prime_formula(PROCS, A), Point(excused, 3))

    def test_dc1_vacuous_without_init(self):
        empty = Run(PROCS, {"p1": [], "p2": [], "p3": []}, duration=4)
        mc = ModelChecker(system_of(empty))
        assert mc.valid(dc1_formula(A))

    def test_dc3_rejects_spontaneous_do(self):
        rogue = Run(
            PROCS,
            {"p1": [], "p2": [(3, DoEvent("p2", A))], "p3": []},
            duration=6,
        )
        mc = ModelChecker(system_of(rogue))
        assert not mc.valid(dc3_formula(PROCS, A))
