"""Tests for the standard detector oracles: each class realises exactly
its advertised accuracy/completeness pair on executor-generated runs."""

import pytest

from repro.core.protocols import StrongFDUDCProcess
from repro.detectors.base import NoDetector, suspects_at, suspicion_history
from repro.detectors.properties import (
    impermanent_strong_completeness,
    impermanent_weak_completeness,
    strong_accuracy,
    strong_completeness,
    weak_accuracy,
    weak_completeness,
)
from repro.detectors.standard import (
    EventuallyWeakOracle,
    ImpermanentStrongOracle,
    ImpermanentWeakOracle,
    LyingOracle,
    NoisyStrongOracle,
    PerfectOracle,
    ScriptedFalseOracle,
    StrongOracle,
    WeakOracle,
)
from repro.model.context import make_process_ids
from repro.model.events import SuspectEvent
from repro.sim.executor import Executor
from repro.sim.failures import CrashPlan
from repro.sim.process import uniform_protocol
from repro.workloads.generators import post_crash_workload, single_action

PROCS = make_process_ids(4)
PLAN = CrashPlan.of({"p2": 5, "p4": 12})


def run_with(detector, *, seed=0, plan=PLAN):
    workload = single_action("p1", tick=1) + post_crash_workload(
        PROCS, plan, actions_per_survivor=1
    )
    return Executor(
        PROCS,
        uniform_protocol(StrongFDUDCProcess),
        crash_plan=plan,
        workload=workload,
        detector=detector,
        seed=seed,
    ).run()


class TestPerfectOracle:
    def test_perfect_properties(self):
        for seed in range(3):
            run = run_with(PerfectOracle(), seed=seed)
            assert strong_accuracy(run)
            assert strong_completeness(run)

    def test_failure_free_run_emits_nothing(self):
        run = run_with(PerfectOracle(), plan=CrashPlan.none())
        assert not any(
            isinstance(e, SuspectEvent) for p in PROCS for e in run.events(p)
        )


class TestStrongOracle:
    def test_strong_properties(self):
        for seed in range(3):
            run = run_with(StrongOracle(), seed=seed)
            assert weak_accuracy(run)
            assert strong_completeness(run)

    def test_not_strongly_accurate_somewhere(self):
        # With the default false-positive rate, some run in a small
        # sweep contains a false suspicion.
        assert any(
            not strong_accuracy(run_with(StrongOracle(), seed=seed))
            for seed in range(6)
        )

    def test_immune_process_never_suspected(self):
        # The immune process is the smallest planned-correct id: p1.
        for seed in range(3):
            run = run_with(StrongOracle(), seed=seed)
            for p in PROCS:
                for _, report in suspicion_history(run, p):
                    assert "p1" not in report.suspects

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            StrongOracle(false_positive_rate=1.5)


class TestWeakOracle:
    def test_weak_properties(self):
        for seed in range(3):
            run = run_with(WeakOracle(), seed=seed)
            assert weak_accuracy(run)
            assert weak_completeness(run)

    def test_not_strongly_complete(self):
        # Only the witness suspects each faulty process; with two
        # correct processes, the other one never does.
        run = run_with(WeakOracle(), seed=0)
        assert not strong_completeness(run)


class TestImpermanentOracles:
    def test_impermanent_strong(self):
        run = run_with(ImpermanentStrongOracle(retract_after=5), seed=0)
        assert impermanent_strong_completeness(run)
        assert weak_accuracy(run)
        assert not strong_completeness(run)  # retracted => not permanent

    def test_impermanent_weak(self):
        run = run_with(ImpermanentWeakOracle(retract_after=5), seed=0)
        assert impermanent_weak_completeness(run)
        assert weak_accuracy(run)

    def test_retraction_visible_in_reports(self):
        run = run_with(ImpermanentStrongOracle(retract_after=5), seed=0)
        # Some process's final suspicion set is empty even though there
        # are faulty processes.
        finals = [suspects_at(run.final_history(p)) for p in run.correct()]
        assert any(s == frozenset() for s in finals)


class TestEventuallyWeakOracle:
    def test_noise_then_stabilization(self):
        oracle = EventuallyWeakOracle(stabilization_tick=25, noise_rate=0.5)
        run = run_with(oracle, seed=1)
        # Early reports may be wrong; after stabilization the most
        # recent reports coincide with the crashed set.
        for p in sorted(run.correct()):
            final = suspects_at(run.final_history(p))
            assert final == run.faulty()

    def test_noise_violates_accuracy_before_stabilization(self):
        oracle = EventuallyWeakOracle(stabilization_tick=40, noise_rate=0.9)
        violated = any(
            not strong_accuracy(run_with(oracle, seed=seed)) for seed in range(4)
        )
        assert violated


class TestNegativeControls:
    def test_noisy_strong_violates_weak_accuracy(self):
        violated = any(
            not weak_accuracy(run_with(NoisyStrongOracle(error_rate=0.8), seed=s))
            for s in range(4)
        )
        assert violated

    def test_noisy_strong_still_complete(self):
        run = run_with(NoisyStrongOracle(error_rate=0.5), seed=0)
        assert strong_completeness(run)

    def test_lying_oracle_violates_accuracy(self):
        assert any(
            not strong_accuracy(run_with(LyingOracle(), seed=s)) for s in range(3)
        )

    def test_scripted_oracle_fixed_targets(self):
        oracle = ScriptedFalseOracle(frozenset({"p3"}))
        run = run_with(oracle, seed=0)
        suspected = set()
        for p in PROCS:
            for _, report in suspicion_history(run, p):
                suspected |= report.suspects
        assert suspected <= {"p3"} | PLAN.faulty

    def test_no_detector(self):
        run = run_with(NoDetector(), seed=0)
        assert not any(
            isinstance(e, SuspectEvent) for p in PROCS for e in run.events(p)
        )


class TestFreshness:
    def test_fresh_resets_state(self):
        oracle = StrongOracle()
        fresh1 = oracle.fresh()
        fresh1._last_emitted["p1"] = frozenset({"p2"})
        fresh1._false["p1"] = {"p2"}
        fresh2 = oracle.fresh()
        assert fresh2._last_emitted == {}
        assert fresh2._false == {}

    def test_executor_uses_fresh_copy(self):
        oracle = ImpermanentStrongOracle()
        run1 = run_with(oracle, seed=0)
        run2 = run_with(oracle, seed=0)
        assert run1 == run2  # shared oracle state would break determinism


class TestSuspectsAt:
    def test_empty_history(self):
        from repro.model.history import History

        assert suspects_at(History()) == frozenset()

    def test_most_recent_wins(self):
        run = run_with(ImpermanentStrongOracle(retract_after=4), seed=0)
        # Walk one correct process's history: after a retraction, the
        # current suspicion set must reflect the latest (empty) report.
        p = min(run.correct())
        reports = list(suspicion_history(run, p))
        if len(reports) >= 2:
            final = suspects_at(run.final_history(p))
            assert final == reports[-1][1].suspects
