"""Tests for the execution backends.

The load-bearing property: runs are pure functions of their specs, so
every backend must return field-for-field identical results in spec
order.  The pool tests run with 2 workers so they exercise real
cross-process dispatch even on small CI machines.
"""

import pytest

from repro.core.protocols import GeneralizedFDUDCProcess
from repro.detectors.generalized import GeneralizedOracle
from repro.model.context import make_process_ids
from repro.runtime import (
    EnsembleSpec,
    ProcessPoolBackend,
    SerialBackend,
    backend_from_name,
    get_default_backend,
    run_ensemble,
    set_default_backend,
)
from repro.sim.executor import ExecutionConfig
from repro.sim.network import ChannelConfig
from repro.sim.process import uniform_protocol
from repro.workloads.generators import single_action

PROCS = make_process_ids(4)


def e07_style_spec(t=2, seeds=(0, 1, 2)):
    """A t-useful detector sweep, as in E07 -- crash plans x seeds."""
    return EnsembleSpec.a5t(
        PROCS,
        uniform_protocol(GeneralizedFDUDCProcess, t=t),
        t=t,
        workload=single_action("p1", tick=1) + single_action("p3", tick=10, name="c0"),
        detector=GeneralizedOracle(t, padding=1),
        seeds=seeds,
    )


class TestSerialPoolEquivalence:
    def test_pool_matches_serial_field_for_field(self):
        spec = e07_style_spec()
        serial = run_ensemble(spec, backend=SerialBackend(), cache=None)
        pooled = run_ensemble(
            spec, backend=ProcessPoolBackend(max_workers=2), cache=None
        )
        assert len(serial) == len(pooled) == len(spec)
        for a, b in zip(serial.runs, pooled.runs):
            assert a.processes == b.processes
            assert a.duration == b.duration
            assert a.meta == b.meta
            for p in a.processes:
                assert a.timeline(p) == b.timeline(p)
            assert a == b

    def test_order_is_spec_order_not_completion_order(self):
        spec = e07_style_spec(seeds=(5, 3, 1))
        report = run_ensemble(
            spec, backend=ProcessPoolBackend(max_workers=2, chunksize=1), cache=None
        )
        assert [m.seed for m in report.metrics] == [s.seed for s in spec.expand()]

    def test_single_spec_falls_back_to_serial(self):
        specs = e07_style_spec(seeds=(0,)).expand()[:1]
        report = run_ensemble(
            specs, backend=ProcessPoolBackend(max_workers=2), cache=None
        )
        assert len(report) == 1


class TestPoolValidation:
    def test_unpicklable_spec_is_rejected_with_guidance(self):
        spec = e07_style_spec(seeds=(0, 1)).expand()
        bad = spec[0].with_(
            config=ExecutionConfig(
                channel=ChannelConfig(blackhole=lambda s, r, m: False)
            )
        )
        with pytest.raises(ValueError, match="not picklable"):
            ProcessPoolBackend(max_workers=2).run_all([bad, spec[1]])

    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(max_workers=0)
        with pytest.raises(ValueError):
            ProcessPoolBackend(chunksize=0)


class TestBackendSelection:
    def test_backend_from_name(self):
        assert isinstance(backend_from_name("serial"), SerialBackend)
        assert isinstance(backend_from_name("process"), ProcessPoolBackend)
        assert backend_from_name("process:3").max_workers == 3
        with pytest.raises(ValueError, match="unknown backend"):
            backend_from_name("gpu")

    def test_run_ensemble_accepts_backend_names(self):
        spec = e07_style_spec(seeds=(0,))
        report = run_ensemble(spec, backend="serial", cache=None)
        assert report.backend == "serial"

    def test_default_backend_round_trip(self):
        try:
            set_default_backend("process:2")
            backend = get_default_backend()
            assert isinstance(backend, ProcessPoolBackend)
            assert backend.max_workers == 2
        finally:
            set_default_backend("serial")


class TestEnsembleReport:
    def test_metrics_and_aggregates(self):
        spec = e07_style_spec(seeds=(0, 1))
        report = run_ensemble(spec, backend=SerialBackend(), cache=None)
        assert report.cache_hits == 0
        assert report.executed == len(spec)
        assert report.total_ticks == sum(r.duration for r in report.runs)
        assert all(m.ticks == r.duration for m, r in zip(report.metrics, report.runs))
        assert all(m.events > 0 for m in report.metrics)
        assert report.run_wall_time > 0

    def test_system_matches_legacy_builder(self):
        from repro.sim.ensembles import a5t_ensemble

        spec = e07_style_spec(seeds=(0, 1))
        report = run_ensemble(spec, backend=SerialBackend(), cache=None)
        legacy = a5t_ensemble(
            PROCS,
            uniform_protocol(GeneralizedFDUDCProcess, t=2),
            t=2,
            workload=single_action("p1", tick=1)
            + single_action("p3", tick=10, name="c0"),
            detector=GeneralizedOracle(2, padding=1),
            seeds=(0, 1),
        )
        assert list(report.system().runs) == list(legacy.runs)

    def test_summary_renders(self):
        report = run_ensemble(
            e07_style_spec(seeds=(0,)), backend=SerialBackend(), cache=None
        )
        text = report.summary()
        assert "serial" in text
        assert f"{len(report)} runs" in text
