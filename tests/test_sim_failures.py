"""Unit tests for crash plans and samplers (A1 / A5_t machinery)."""

import random
from itertools import combinations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.context import make_process_ids
from repro.sim.failures import (
    CrashPlan,
    all_crash_plans,
    sample_crash_plan,
    staggered_plan,
)

PROCS = make_process_ids(4)


class TestCrashPlan:
    def test_empty_plan(self):
        plan = CrashPlan.none()
        assert len(plan) == 0
        assert plan.faulty == frozenset()
        assert plan.crash_tick("p1") is None

    def test_of_and_queries(self):
        plan = CrashPlan.of({"p2": 5, "p1": 3})
        assert plan.faulty == frozenset({"p1", "p2"})
        assert plan.crash_tick("p1") == 3
        assert plan.as_dict() == {"p1": 3, "p2": 5}

    def test_duplicate_process_rejected(self):
        with pytest.raises(ValueError):
            CrashPlan((("p1", 3), ("p1", 5)))

    def test_negative_tick_rejected(self):
        with pytest.raises(ValueError):
            CrashPlan.of({"p1": -1})

    def test_plans_are_hashable_and_comparable(self):
        assert CrashPlan.of({"p1": 3}) == CrashPlan.of({"p1": 3})
        assert len({CrashPlan.of({"p1": 3}), CrashPlan.of({"p1": 3})}) == 1


class TestSampler:
    def test_respects_bound(self):
        for seed in range(20):
            plan = sample_crash_plan(
                random.Random(seed), PROCS, max_failures=2, crash_prob=0.9
            )
            assert len(plan) <= 2

    def test_horizon_respected(self):
        plan = sample_crash_plan(
            random.Random(1), PROCS, crash_prob=1.0, horizon=7
        )
        assert all(tick <= 7 for _, tick in plan.crashes)

    def test_unbounded_allows_all(self):
        plan = sample_crash_plan(random.Random(3), PROCS, crash_prob=1.0)
        assert plan.faulty == frozenset(PROCS)

    @given(st.integers(0, 1000))
    def test_deterministic_given_seed(self, seed):
        a = sample_crash_plan(random.Random(seed), PROCS, crash_prob=0.5)
        b = sample_crash_plan(random.Random(seed), PROCS, crash_prob=0.5)
        assert a == b


class TestAllCrashPlans:
    def test_a5t_coverage(self):
        # A5_t: every subset of size <= t appears exactly once.
        plans = list(all_crash_plans(PROCS, max_failures=2))
        faulty_sets = [plan.faulty for plan in plans]
        expected = [
            frozenset(c)
            for size in range(3)
            for c in combinations(PROCS, size)
        ]
        assert sorted(faulty_sets, key=sorted) == sorted(expected, key=sorted)

    def test_t_zero_only_empty(self):
        plans = list(all_crash_plans(PROCS, max_failures=0))
        assert plans == [CrashPlan.none()]

    def test_common_crash_tick(self):
        for plan in all_crash_plans(PROCS, max_failures=3, crash_tick=9):
            assert all(tick == 9 for _, tick in plan.crashes)


class TestStaggeredPlan:
    def test_spacing(self):
        plan = staggered_plan(PROCS, ["p1", "p3"], first_tick=4, spacing=6)
        assert plan.crash_tick("p1") == 4
        assert plan.crash_tick("p3") == 10

    def test_unknown_process_rejected(self):
        with pytest.raises(ValueError):
            staggered_plan(PROCS, ["p9"])

    def test_empty_faulty_list(self):
        assert staggered_plan(PROCS, []) == CrashPlan.none()
