"""Tests for group knowledge: E_G, D_G, C_G, and the coordinated-attack
unattainability of common knowledge under unreliable communication."""

import pytest

from repro.core.protocols import NUDCProcess
from repro.knowledge import ModelChecker
from repro.knowledge.formulas import Crashed, Inited, Knows, TRUE
from repro.knowledge.group import (
    GroupChecker,
    e_iterated,
    everyone_knows,
)
from repro.model.context import make_process_ids
from repro.model.events import CrashEvent, InitEvent, Message, ReceiveEvent, SendEvent
from repro.model.run import Point, Run
from repro.model.system import System
from repro.sim.ensembles import a5t_ensemble
from repro.sim.fip import with_full_information
from repro.sim.process import uniform_protocol
from repro.workloads.generators import single_action

SMALL = ("p1", "p2")
PROCS = make_process_ids(3)
ACTION = ("p1", "a0")


def two_run_system():
    """Run A: p1 inits and tells p2 (received).  Run B: nothing happens."""
    msg = Message("told")
    a = Run(
        SMALL,
        {
            "p1": [(1, InitEvent("p1", ACTION)), (2, SendEvent("p1", "p2", msg))],
            "p2": [(4, ReceiveEvent("p2", "p1", msg))],
        },
        duration=6,
    )
    b = Run(SMALL, {"p1": [], "p2": []}, duration=6)
    return System([a, b]), a, b


class TestEveryoneKnows:
    def test_requires_all_members(self):
        system, a, _ = two_run_system()
        mc = ModelChecker(system)
        phi = Inited("p1", ACTION)
        # At time 2: p1 knows, p2 does not yet.
        assert mc.holds(Knows("p1", phi), Point(a, 2))
        assert not mc.holds(everyone_knows(SMALL, phi), Point(a, 2))
        # At time 4 both know.
        assert mc.holds(everyone_knows(SMALL, phi), Point(a, 4))

    def test_depth_zero_is_identity(self):
        system, a, _ = two_run_system()
        mc = ModelChecker(system)
        phi = Inited("p1", ACTION)
        assert mc.holds(e_iterated(SMALL, phi, 0), Point(a, 1))

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            e_iterated(SMALL, TRUE, -1)

    def test_second_level_fails_without_acknowledgment(self):
        # p2 knows phi at 4, but p1 never learns that p2 received the
        # message, so E^2 = E(E phi) fails even at the end.
        system, a, _ = two_run_system()
        mc = ModelChecker(system)
        phi = Inited("p1", ACTION)
        assert mc.holds(e_iterated(SMALL, phi, 1), Point(a, 6))
        assert not mc.holds(e_iterated(SMALL, phi, 2), Point(a, 6))


class TestDistributedKnowledge:
    def test_group_pools_information(self):
        # Footnote 4's notion: together the group may know what no
        # member knows alone.
        msg = Message("m")
        a = Run(
            PROCS,
            {
                "p1": [(2, SendEvent("p1", "p2", msg))],
                "p2": [(4, ReceiveEvent("p2", "p1", msg))],
                "p3": [(3, CrashEvent("p3"))],
            },
            duration=6,
        )
        b = Run(
            PROCS,
            {
                "p1": [(2, SendEvent("p1", "p2", msg))],
                "p2": [(4, ReceiveEvent("p2", "p1", msg))],
                "p3": [],
            },
            duration=6,
        )
        # Distinguishing run: p2's receipt together with p3 crashed.
        c = Run(
            PROCS,
            {"p1": [], "p2": [], "p3": [(3, CrashEvent("p3"))]},
            duration=6,
        )
        system = System([a, b, c])
        mc = ModelChecker(system)
        gc = GroupChecker(mc)
        phi = Crashed("p3")
        # p2 alone cannot distinguish a from b (p3's crash is invisible
        # to it), so it does not know crash(p3)...
        assert not mc.holds(Knows("p2", phi), Point(a, 5))
        # ... but p2's receipt rules out run c, and pooled with p3's own
        # history (which pins the crash), the group knows.
        assert gc.distributed_knowledge(("p2", "p3"), phi, Point(a, 5))

    def test_empty_group_rejected(self):
        system, a, _ = two_run_system()
        gc = GroupChecker(ModelChecker(system))
        with pytest.raises(ValueError):
            gc.distributed_knowledge((), TRUE, Point(a, 0))

    def test_singleton_group_is_knowledge(self):
        system, a, _ = two_run_system()
        mc = ModelChecker(system)
        gc = GroupChecker(mc)
        phi = Inited("p1", ACTION)
        for m in range(7):
            assert gc.distributed_knowledge(
                ("p2",), phi, Point(a, m)
            ) == mc.holds(Knows("p2", phi), Point(a, m))


class TestCommonKnowledge:
    def test_tautologies_are_common_knowledge(self):
        system, a, _ = two_run_system()
        gc = GroupChecker(ModelChecker(system))
        assert gc.common_knowledge(SMALL, TRUE, Point(a, 0))

    def test_new_facts_never_become_common_knowledge(self):
        """Coordinated attack: one unacknowledged message cannot create
        common knowledge -- and in our lossy-channel ensembles, no
        finite exchange can."""
        system, a, _ = two_run_system()
        gc = GroupChecker(ModelChecker(system))
        phi = Inited("p1", ACTION)
        for m in range(a.duration + 1):
            assert not gc.common_knowledge(SMALL, phi, Point(a, m))

    def test_e_levels_climb_in_protocol_ensembles(self):
        with_action = a5t_ensemble(
            PROCS,
            with_full_information(uniform_protocol(NUDCProcess)),
            t=1,
            workload=single_action("p1", tick=1),
            seeds=(0,),
        )
        without = a5t_ensemble(
            PROCS,
            with_full_information(uniform_protocol(NUDCProcess)),
            t=1,
            workload=[],
            seeds=(0,),
        )
        system = with_action.union(without)
        mc = ModelChecker(system)
        gc = GroupChecker(mc)
        phi = Inited("p1", ACTION)
        run = system.runs[0]
        end = Point(run, run.duration)
        # E^k climbs with the gossip depth.  (C_G may hold RELATIVE TO a
        # small sampled ensemble -- knowledge is an upper bound w.r.t.
        # the true loss-closed system; the coordinated-attack ladder
        # below demonstrates unattainability on a loss-closed system.)
        depth = gc.max_e_depth(PROCS, phi, end, cap=4)
        assert depth >= 1

    def test_coordinated_attack_ladder(self):
        """The classic induction: a chain of runs, adjacent ones
        indistinguishable to one process, linking any finite exchange
        back to a run where the fact is false.  E^k climbs with the
        number of delivered messages; C_G never arrives."""
        system, runs = self._ladder_system(levels=4)
        mc = ModelChecker(system)
        gc = GroupChecker(mc)
        phi = Inited("p1", ACTION)
        end = lambda r: Point(r, r.duration)  # noqa: E731

        depths = [gc.max_e_depth(SMALL, phi, end(r), cap=8) for r in runs[1:]]
        # More delivered messages => at least as much iterated knowledge,
        # and the ladder really climbs somewhere.
        assert depths == sorted(depths)
        assert depths[-1] > depths[0]
        # Common knowledge fails at every point of every run.
        for r in runs:
            for m in range(0, r.duration + 1, 3):
                assert not gc.common_knowledge(SMALL, phi, Point(r, m))

    @staticmethod
    def _ladder_system(levels: int):
        """Runs r_0..r_levels: in r_j the first j messages of the
        alternating p1->p2->p1->... exchange are delivered and message
        j+1 is sent but lost; r_bot has no initiation at all."""
        def build(delivered: int):
            timelines = {"p1": [(1, InitEvent("p1", ACTION))], "p2": []}
            t = 2
            for i in range(1, delivered + 2):  # message i; last one is lost
                sender, receiver = ("p1", "p2") if i % 2 else ("p2", "p1")
                msg = Message(f"m{i}")
                if i == delivered + 1:
                    # sent but lost -- only if its trigger was received
                    timelines[sender].append((t, SendEvent(sender, receiver, msg)))
                    break
                timelines[sender].append((t, SendEvent(sender, receiver, msg)))
                timelines[receiver].append((t + 1, ReceiveEvent(receiver, sender, msg)))
                t += 2
            duration = 2 * levels + 6
            return Run(SMALL, timelines, duration)

        r_bot = Run(SMALL, {"p1": [], "p2": []}, duration=2 * levels + 6)
        runs = [r_bot] + [build(j) for j in range(levels + 1)]
        return System(runs), runs

    def test_foreign_point_rejected(self):
        system, a, _ = two_run_system()
        gc = GroupChecker(ModelChecker(system))
        foreign = Run(SMALL, {"p1": [], "p2": []}, duration=2)
        with pytest.raises(ValueError):
            gc.common_knowledge(SMALL, TRUE, Point(foreign, 0))
