"""Property-based end-to-end tests: the paper's invariants hold for
arbitrary adversaries (seeds, crash plans, channel parameters)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.properties import nudc_holds, udc_holds
from repro.core.protocols import (
    NUDCProcess,
    ReliableUDCProcess,
    StrongFDUDCProcess,
)
from repro.detectors.properties import strong_accuracy, strong_completeness
from repro.detectors.standard import PerfectOracle, StrongOracle
from repro.model.context import ChannelSemantics, make_process_ids
from repro.model.run import validate_run
from repro.sim.executor import ExecutionConfig, Executor
from repro.sim.failures import CrashPlan, sample_crash_plan
from repro.sim.network import ChannelConfig
from repro.sim.process import uniform_protocol
from repro.workloads.generators import single_action

PROCS = make_process_ids(4)


def random_plan(seed: int, max_failures=None) -> CrashPlan:
    return sample_crash_plan(
        random.Random(seed),
        PROCS,
        max_failures=max_failures,
        crash_prob=0.45,
        horizon=25,
    )


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10**6), st.integers(0, 10**6))
def test_nudc_invariant_under_arbitrary_adversary(seed, plan_seed):
    """Prop 2.3 as a property: nUDC holds for every seed and crash plan."""
    run = Executor(
        PROCS,
        uniform_protocol(NUDCProcess),
        crash_plan=random_plan(plan_seed),
        workload=single_action("p1", tick=1),
        seed=seed,
    ).run()
    assert nudc_holds(run), nudc_holds(run).witness


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10**6), st.integers(0, 10**6))
def test_reliable_udc_invariant(seed, plan_seed):
    """Prop 2.4 as a property: UDC holds under reliable channels."""
    run = Executor(
        PROCS,
        uniform_protocol(ReliableUDCProcess),
        crash_plan=random_plan(plan_seed),
        workload=single_action("p1", tick=1),
        config=ExecutionConfig(
            channel=ChannelConfig(semantics=ChannelSemantics.RELIABLE)
        ),
        seed=seed,
    ).run()
    assert udc_holds(run), udc_holds(run).witness


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10**6), st.integers(0, 10**6))
def test_strong_fd_udc_invariant(seed, plan_seed):
    """Prop 3.1 as a property: UDC holds with a strong detector under
    fair-lossy channels, any number of failures."""
    run = Executor(
        PROCS,
        uniform_protocol(StrongFDUDCProcess),
        crash_plan=random_plan(plan_seed),
        workload=single_action("p1", tick=1),
        detector=StrongOracle(),
        seed=seed,
    ).run()
    assert udc_holds(run), udc_holds(run).witness


@settings(max_examples=15, deadline=None)
@given(
    st.integers(0, 10**6),
    st.integers(0, 10**6),
    st.floats(0.0, 0.7),
    st.integers(0, 6),
)
def test_executor_output_always_wellformed(seed, plan_seed, drop_prob, budget):
    """Every run the executor produces satisfies R1-R5 (the validator is
    on by default; this re-checks explicitly across channel parameters)."""
    config = ExecutionConfig(
        channel=ChannelConfig(drop_prob=drop_prob, max_consecutive_drops=budget)
    )
    run = Executor(
        PROCS,
        uniform_protocol(NUDCProcess),
        crash_plan=random_plan(plan_seed),
        workload=single_action("p1", tick=1),
        config=config,
        seed=seed,
    ).run()
    validate_run(run, r5_send_threshold=budget + 2)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6))
def test_perfect_oracle_invariants(plan_seed):
    """The perfect oracle is perfect under every failure pattern."""
    plan = random_plan(plan_seed, max_failures=3)
    run = Executor(
        PROCS,
        uniform_protocol(StrongFDUDCProcess),
        crash_plan=plan,
        workload=single_action("p1", tick=1),
        detector=PerfectOracle(),
        seed=plan_seed % 97,
    ).run()
    assert strong_accuracy(run), strong_accuracy(run).witness
    assert strong_completeness(run), strong_completeness(run).witness


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 10**6), st.integers(0, 10**6))
def test_determinism_property(seed, plan_seed):
    """Same (protocol, plan, workload, seed) -> identical runs."""
    def once():
        return Executor(
            PROCS,
            uniform_protocol(StrongFDUDCProcess),
            crash_plan=random_plan(plan_seed),
            workload=single_action("p1", tick=1),
            detector=StrongOracle(),
            seed=seed,
        ).run()

    assert once() == once()
