"""Tests for the hardened runtime: deadlines, retries with backoff,
pool respawn after worker death, and graceful ensemble degradation."""

import warnings
from pathlib import Path

import pytest

from repro.core.protocols import NUDCProcess
from repro.faults import InfraFaultPlan, use_infra_faults
from repro.model.context import make_process_ids
from repro.model.run import Point, Run
from repro.model.system import IncompleteSystemWarning, System
from repro.runtime import (
    FailedRun,
    ProcessPoolBackend,
    RetryPolicy,
    RunSpec,
    SerialBackend,
    run_ensemble,
)
from repro.sim.executor import ExecutionConfig
from repro.sim.process import uniform_protocol
from repro.workloads.generators import single_action

PROCS = make_process_ids(3)


def make_spec(seed=0, config=None):
    return RunSpec(
        processes=PROCS,
        protocol=uniform_protocol(NUDCProcess),
        workload=single_action("p1", tick=1),
        config=config,
        seed=seed,
    )


def doomed_spec(seed=7):
    """A spec whose zero-second deadline trips on the first tick."""
    return make_spec(seed=seed, config=ExecutionConfig(deadline=0.0))


class FlakyFactory:
    """Protocol factory that fails the first ``fails`` builds, then works.

    State lives in marker files under ``state_dir`` so the flakiness is
    observable across retry attempts (and would be across processes).
    """

    def __init__(self, state_dir, fails):
        self.state_dir = str(state_dir)
        self.fails = fails
        self.inner = uniform_protocol(NUDCProcess)

    def __call__(self, pid, env):
        markers = list(Path(self.state_dir).glob("fail-*"))
        if len(markers) < self.fails:
            (Path(self.state_dir) / f"fail-{len(markers)}").touch()
            raise RuntimeError(f"transient failure #{len(markers) + 1}")
        return self.inner(pid, env)


class TestRetryPolicy:
    def test_exponential_backoff_is_capped(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, max_backoff=0.3)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.3)
        assert policy.delay(9) == pytest.approx(0.3)

    def test_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


class TestDeadlines:
    def test_deadline_becomes_a_structured_failure_not_a_retry(self):
        batch = SerialBackend().run_all_safe(
            [doomed_spec()], RetryPolicy(max_attempts=3, backoff_base=0.0)
        )
        (outcome,) = batch.outcomes
        assert isinstance(outcome, FailedRun)
        assert outcome.kind == "deadline"
        assert outcome.attempts == 1  # deterministic slowness: no retry
        assert not outcome.recovered
        assert "deadline" in outcome.error

    def test_unset_deadline_costs_nothing(self):
        batch = SerialBackend().run_all_safe([make_spec()])
        (outcome,) = batch.outcomes
        assert not isinstance(outcome, FailedRun)


class TestSerialRetries:
    def test_transient_exception_recovers_with_a_record(self, tmp_path):
        spec = make_spec().with_(protocol=FlakyFactory(tmp_path, fails=1))
        batch = SerialBackend().run_all_safe(
            [spec], RetryPolicy(max_attempts=3, backoff_base=0.0)
        )
        (outcome,) = batch.outcomes
        assert not isinstance(outcome, FailedRun)
        (recovery,) = batch.recoveries
        assert recovery.recovered
        assert recovery.kind == "exception"
        assert recovery.attempts == 2
        assert "transient failure" in recovery.error

    def test_exhausted_retries_fail_with_attempt_count(self, tmp_path):
        spec = make_spec().with_(protocol=FlakyFactory(tmp_path, fails=10))
        batch = SerialBackend().run_all_safe(
            [spec], RetryPolicy(max_attempts=2, backoff_base=0.0)
        )
        (outcome,) = batch.outcomes
        assert isinstance(outcome, FailedRun)
        assert outcome.kind == "exception"
        assert outcome.attempts == 2

    def test_run_all_names_the_lost_specs(self):
        with pytest.raises(RuntimeError, match=r"lost results.*seed=7"):
            SerialBackend().run_all([doomed_spec(seed=7)])


class TestPoolHardening:
    def test_pool_survives_a_killed_worker(self, tmp_path):
        specs = [make_spec(seed=s) for s in range(4)]
        plan = InfraFaultPlan(state_dir=str(tmp_path), kill_worker_seeds=(2,))
        with use_infra_faults(plan):
            report = run_ensemble(
                specs,
                backend=ProcessPoolBackend(max_workers=2),
                cache=None,
                retry=RetryPolicy(max_attempts=3, backoff_base=0.01),
            )
        assert plan.kill_marker(2).exists()  # the kill actually fired
        assert report.complete
        assert any(
            r.kind == "worker-crash" and r.recovered for r in report.recoveries
        )
        # Recovered results are still bitwise what serial produces.
        serial = run_ensemble(specs, backend=SerialBackend(), cache=None)
        assert list(report.runs) == list(serial.runs)

    def test_worker_count_types_validated(self):
        with pytest.raises(TypeError, match="max_workers must be an int"):
            ProcessPoolBackend(max_workers=2.5)
        with pytest.raises(TypeError, match="max_workers must be an int"):
            ProcessPoolBackend(max_workers=True)
        with pytest.raises(TypeError, match="chunksize must be an int"):
            ProcessPoolBackend(chunksize="4")
        with pytest.raises(ValueError):
            ProcessPoolBackend(max_workers=0)


class TestGracefulDegradation:
    def test_failures_degrade_the_report_instead_of_raising(self):
        specs = [make_spec(seed=0), doomed_spec(seed=7)]
        with pytest.warns(UserWarning, match="degraded: 1 of 2"):
            report = run_ensemble(specs, backend=SerialBackend(), cache=None)
        assert not report.complete
        assert len(report.runs) == 1
        (failure,) = report.failures
        assert failure.index == 1 and failure.seed == 7
        assert failure.kind == "deadline"
        assert "DEGRADED" in report.summary()
        system = report.system()
        assert not system.complete
        assert system.missing_runs == 1

    def test_strict_mode_restores_abort_semantics(self):
        specs = [make_spec(seed=0), doomed_spec(seed=7)]
        with pytest.raises(RuntimeError, match=r"strict mode.*seed=7"):
            run_ensemble(specs, backend=SerialBackend(), cache=None, strict=True)

    def test_all_runs_lost_still_returns_a_report(self):
        with pytest.warns(UserWarning, match="degraded"):
            report = run_ensemble(
                [doomed_spec(seed=1)], backend=SerialBackend(), cache=None
            )
        assert len(report.runs) == 0
        with pytest.raises(ValueError, match="zero surviving runs"):
            report.system()


class TestIncompleteSystemWarning:
    def _system(self, missing):
        run = Run(("p1",), {"p1": []}, 1)
        return System([run], missing_runs=missing), Point(run, 0)

    def test_warning_counts_missing_runs(self):
        system, point = self._system(missing=2)
        with pytest.warns(
            IncompleteSystemWarning, match="2 planned runs missing or failed"
        ):
            system.knows("p1", point, lambda pt: True)

    def test_fires_once_per_system_not_once_per_process(self):
        sys_a, point = self._system(missing=1)
        with pytest.warns(IncompleteSystemWarning):
            sys_a.knows("p1", point, lambda pt: True)
        # Same system again: silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            sys_a.knows("p1", point, lambda pt: True)
        # A *different* incomplete system warns again, even though the
        # warning is raised from the very same file/line.
        sys_b, point_b = self._system(missing=1)
        with pytest.warns(IncompleteSystemWarning):
            sys_b.knows("p1", point_b, lambda pt: True)
