"""Tests for the experiment harness: every experiment passes at reduced
scale, results render, and Table 1 reproduces the paper's shape."""

import pytest

from repro.harness.experiments import ALL_EXPERIMENTS, run_experiment
from repro.harness.results import ExperimentResult, render_result, render_results
from repro.harness.table1 import REGIMES, build_table1, render_table1, run_e09


class TestResults:
    def test_require_accumulates(self):
        r = ExperimentResult("X", "t", "c", passed=True)
        assert r.require(True, "ok")
        assert r.passed
        assert not r.require(False, "bad")
        assert not r.passed

    def test_render_contains_rows(self):
        r = ExperimentResult("X", "title", "claim", passed=True)
        r.row("metric", 42)
        text = render_result(r)
        assert "[X] title ... PASS" in text
        assert "metric" in text and "42" in text

    def test_render_results_summary(self):
        a = ExperimentResult("A", "t", "c", passed=True)
        b = ExperimentResult("B", "t", "c", passed=False)
        text = render_results([a, b])
        assert "1/2 experiments passed" in text


class TestExperimentRegistry:
    def test_known_ids(self):
        assert set(ALL_EXPERIMENTS) == {
            "E01", "E02", "E03", "E04", "E05", "E06", "E07", "E08",
            "E10", "E11", "E12", "E13", "A13", "A14", "A15", "A16", "A17",
        }

    def test_unknown_id_raises(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_experiment("E99")

    def test_lookup_case_insensitive(self):
        result = run_experiment("a14")
        assert result.exp_id == "A14"


# One test per experiment, so failures localize.  These run the real
# experiment functions (at their default, already-modest scale).


@pytest.mark.parametrize("exp_id", sorted(ALL_EXPERIMENTS))
def test_experiment_passes(exp_id):
    result = ALL_EXPERIMENTS[exp_id]()
    assert result.passed, render_result(result)


class TestTable1:
    @pytest.fixture(scope="class")
    def table(self):
        return build_table1(n=5, seeds=(0,))

    def test_all_cells_present(self, table):
        assert len(table.cells) == 12  # 2 channels x 2 problems x 3 regimes
        for channel in ("Reliable", "Unreliable"):
            for problem in ("UDC", "consensus"):
                for regime in REGIMES:
                    assert any(
                        c.channel == channel
                        and c.problem == problem
                        and c.regime == regime
                        for c in table.cells
                    )

    def test_shape_matches_paper(self, table):
        failing = [c for c in table.cells if not c.matches_paper]
        assert not failing, [
            (c.channel, c.problem, c.regime, c.verdict) for c in failing
        ]

    def test_udc_unreliable_needs_detector_beyond_half(self, table):
        cell = next(
            c
            for c in table.cells
            if c.channel == "Unreliable"
            and c.problem == "UDC"
            and c.regime == "n/2 <= t < n-1"
        )
        assert cell.claimed == "t-useful"
        assert cell.weaker_fails

    def test_reliable_udc_needs_nothing(self, table):
        for regime in REGIMES:
            cell = next(
                c
                for c in table.cells
                if c.channel == "Reliable" and c.problem == "UDC" and c.regime == regime
            )
            assert cell.claimed == "no FD"
            assert cell.sufficient_ok

    def test_render(self, table):
        text = render_table1(table)
        assert "Table 1" in text
        assert "shape matches paper: YES" in text
        assert "t-useful" in text

    def test_e09_wrapper(self):
        result = run_e09(n=5, seeds=(0,))
        assert result.exp_id == "E09"
        assert result.passed
