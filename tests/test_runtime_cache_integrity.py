"""Tests for RunCache disk integrity: atomic writes, checksummed
entries, quarantine of corrupt files, and regeneration."""

import json


from repro.core.protocols import NUDCProcess
from repro.faults import corrupt_cache_entry
from repro.model.context import make_process_ids
from repro.runtime import RunCache, RunSpec, run_ensemble
from repro.sim.executor import Executor
from repro.sim.process import uniform_protocol
from repro.workloads.generators import single_action

PROCS = make_process_ids(3)


def make_spec(seed=0):
    return RunSpec(
        processes=PROCS,
        protocol=uniform_protocol(NUDCProcess),
        workload=single_action("p1", tick=1),
        seed=seed,
    )


def make_run(spec):
    return Executor.from_spec(spec).run()


class TestAtomicCheckedWrites:
    def test_put_is_atomic_and_checksummed(self, tmp_path):
        spec = make_spec()
        RunCache(tmp_path).put(spec, make_run(spec))
        assert not list(tmp_path.glob("*.tmp"))  # temp file was renamed away
        payload = json.loads(
            (tmp_path / f"{spec.digest()}.json").read_text(encoding="utf-8")
        )
        assert payload["format"] == "repro-run-entry-v2"
        assert len(payload["sha256"]) == 64
        assert "run" in payload

    def test_round_trip_through_disk(self, tmp_path):
        spec = make_spec()
        run = make_run(spec)
        RunCache(tmp_path).put(spec, run)
        fresh = RunCache(tmp_path)
        assert fresh.get(spec) == run
        assert fresh.quarantined == []


class TestQuarantine:
    def test_garbage_entry_quarantined_and_read_as_miss(self, tmp_path):
        spec = make_spec()
        RunCache(tmp_path).put(spec, make_run(spec))
        corrupt_cache_entry(tmp_path, spec.digest())

        fresh = RunCache(tmp_path)
        assert fresh.get(spec) is None
        (entry,) = fresh.quarantined
        assert entry[0] == spec.digest()
        assert not (tmp_path / f"{spec.digest()}.json").exists()
        assert (tmp_path / f"{spec.digest()}.corrupt").exists()

        # Regeneration heals the entry for every later reader.
        fresh.put(spec, make_run(spec))
        assert RunCache(tmp_path).get(spec) is not None

    def test_tampered_body_fails_the_digest_check(self, tmp_path):
        spec = make_spec()
        RunCache(tmp_path).put(spec, make_run(spec))
        path = tmp_path / f"{spec.digest()}.json"
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["run"]["duration"] = payload["run"]["duration"] + 1
        path.write_text(json.dumps(payload), encoding="utf-8")

        fresh = RunCache(tmp_path)
        assert fresh.get(spec) is None
        (entry,) = fresh.quarantined
        assert "digest mismatch" in entry[1]

    def test_legacy_unchecksummed_entry_still_readable(self, tmp_path):
        from repro.model.serialize import run_to_dict

        spec = make_spec()
        run = make_run(spec)
        path = tmp_path / f"{spec.digest()}.json"
        path.write_text(json.dumps(run_to_dict(run)), encoding="utf-8")
        fresh = RunCache(tmp_path)
        assert fresh.get(spec) == run
        assert fresh.quarantined == []

    def test_run_ensemble_surfaces_cache_corruption_as_recovery(self, tmp_path):
        spec = make_spec()
        run_ensemble([spec], backend="serial", cache=RunCache(tmp_path))
        corrupt_cache_entry(tmp_path, spec.digest())

        report = run_ensemble([spec], backend="serial", cache=RunCache(tmp_path))
        assert report.complete  # the run was regenerated
        assert len(report.runs) == 1
        (recovery,) = report.recoveries
        assert recovery.kind == "cache-corrupt"
        assert recovery.recovered
        # The regenerated entry is healthy again.
        assert RunCache(tmp_path).get(spec) is not None


class TestExplorationIntegrity:
    def test_corrupt_exploration_entry_quarantined(self, tmp_path):
        from repro.explore.reduction import ExploreStats

        run = make_run(make_spec())
        cache = RunCache(tmp_path)
        cache.put_exploration("deadbeef", (run,), ExploreStats(runs_unique=1))
        path = tmp_path / "explore-deadbeef.json"
        assert not list(tmp_path.glob("*.tmp"))
        path.write_text(path.read_text(encoding="utf-8")[:40], encoding="utf-8")

        fresh = RunCache(tmp_path)
        assert fresh.get_exploration("deadbeef") is None
        assert any(d == "explore-deadbeef" for d, _ in fresh.quarantined)
        assert path.with_name("explore-deadbeef.corrupt").exists()

    def test_exploration_round_trip_checksummed(self, tmp_path):
        from repro.explore.reduction import ExploreStats

        run = make_run(make_spec())
        RunCache(tmp_path).put_exploration(
            "cafe", (run,), ExploreStats(runs_unique=1)
        )
        payload = json.loads(
            (tmp_path / "explore-cafe.json").read_text(encoding="utf-8")
        )
        assert payload["format"] == "repro-exploration-v4"
        assert "arena" in payload["body"]
        hit = RunCache(tmp_path).get_exploration("cafe")
        assert hit is not None
        runs, stats = hit
        assert runs == (run,)
        assert stats.runs_unique == 1


class TestClear:
    def test_clear_resets_quarantine_log(self, tmp_path):
        spec = make_spec()
        RunCache(tmp_path).put(spec, make_run(spec))
        corrupt_cache_entry(tmp_path, spec.digest())
        cache = RunCache(tmp_path)
        cache.get(spec)
        assert cache.quarantined
        cache.clear()
        assert cache.quarantined == []
        assert cache.hits == cache.misses == 0
