"""Tests for the TCP chaos proxy (repro.faults.proxy).

The package invariants under test: an inactive :class:`WireFaultPlan`
makes the proxy a byte-transparent relay (a serve exchange through it
answers exactly like a direct connection); injector decisions are a
pure function of ``(seed, connection, direction)`` so a soak replays;
and each fault kind both fires and keeps its local contract (corruption
flips exactly one byte, partial writes partition the chunk, disconnects
surface as transport errors the client retry layer owns).
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.faults import ChaosProxy, WireFaultPlan
from repro.knowledge import Crashed
from repro.model.synthetic import synthetic_system
from repro.serve.client import ServeClient, knows_query, runs_to_arena_payload
from repro.serve.server import EpistemicServer
from repro.serve.state import ServeState


class ServerThread:
    """A plain EpistemicServer on a background thread."""

    def __init__(self, state: ServeState) -> None:
        self.server = EpistemicServer(state)
        bound: dict = {}
        started = threading.Event()

        def _run() -> None:
            loop = asyncio.new_event_loop()
            try:
                asyncio.set_event_loop(loop)
                bound["addr"] = loop.run_until_complete(self.server.start())
                started.set()
                loop.run_until_complete(self.server.run())
            finally:
                loop.close()

        self.thread = threading.Thread(target=_run, daemon=True)
        self.thread.start()
        assert started.wait(timeout=30)
        self.host, self.port = bound["addr"]

    def close(self) -> None:
        try:
            with ServeClient.connect(self.host, self.port, timeout=5.0) as client:
                client.shutdown()
        except (ConnectionError, OSError):
            pass
        self.thread.join(timeout=30)
        assert not self.thread.is_alive()


class ProxyThread:
    """A ChaosProxy on its own event-loop thread."""

    def __init__(self, proxy: ChaosProxy) -> None:
        self.proxy = proxy
        self.loop = asyncio.new_event_loop()
        bound: dict = {}
        started = threading.Event()

        def _run() -> None:
            asyncio.set_event_loop(self.loop)
            bound["addr"] = self.loop.run_until_complete(proxy.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=_run, daemon=True)
        self.thread.start()
        assert started.wait(timeout=30)
        self.host, self.port = bound["addr"]

    def close(self) -> None:
        asyncio.run_coroutine_threadsafe(self.proxy.stop(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        assert not self.thread.is_alive()


@pytest.fixture
def upstream():
    state = ServeState()
    base = synthetic_system(3, 4, seed=11, duration=4)
    state.create("s", runs_to_arena_payload(base.runs))
    server = ServerThread(state)
    try:
        yield server
    finally:
        server.close()


def test_plan_validation() -> None:
    with pytest.raises(ValueError):
        WireFaultPlan(latency_prob=1.5)
    with pytest.raises(ValueError):
        WireFaultPlan(corrupt_prob=1)  # int, not the float the draw needs
    with pytest.raises(ValueError):
        WireFaultPlan(throttle_bytes_per_s=-1)
    with pytest.raises(ValueError):
        WireFaultPlan(max_partial_bytes=0)
    assert not WireFaultPlan().active
    assert WireFaultPlan(partial_write_prob=0.5).active


def test_inactive_plan_is_transparent(upstream) -> None:
    proxy = ProxyThread(ChaosProxy(WireFaultPlan(), upstream.host, upstream.port))
    try:
        query = [knows_query("p1", Crashed("p2"), 0, 2)]
        with ServeClient.connect(upstream.host, upstream.port) as direct:
            want = direct.query_response("s", query)
        with ServeClient.connect(proxy.host, proxy.port) as relayed:
            assert relayed.ping()
            got = relayed.query_response("s", query)
        assert got == want
        assert proxy.proxy.summary() == {}  # no fault ever fired
        assert proxy.proxy.connections == 1
    finally:
        proxy.close()


def test_injector_decisions_replay_from_the_seed() -> None:
    plan = WireFaultPlan(
        seed=42,
        latency_prob=0.3,
        partial_write_prob=0.4,
        max_partial_bytes=5,
        disconnect_prob=0.1,
        corrupt_prob=0.3,
    )
    chunk = bytes(range(64))

    def decisions(injector):
        out = []
        for _ in range(50):
            out.append(injector.delay_seconds())
            out.append(injector.should_disconnect())
            out.append(injector.corrupt(chunk))
            out.append(tuple(injector.pieces(chunk)))
        return out

    a = decisions(plan.injector(3, "send"))
    b = decisions(plan.injector(3, "send"))
    assert a == b
    # A different connection (or direction) draws a different stream.
    assert decisions(plan.injector(4, "send")) != a
    assert decisions(plan.injector(3, "recv")) != a


def test_corrupt_flips_exactly_one_byte() -> None:
    plan = WireFaultPlan(corrupt_prob=1.0)
    injector = plan.injector(0, "send")
    data = bytes(100)
    mutated = injector.corrupt(data)
    assert len(mutated) == len(data)
    assert sum(1 for x, y in zip(data, mutated) if x != y) == 1
    assert injector.counts["corrupted"] == 1
    assert injector.corrupt(b"") == b""  # empty chunks pass through


def test_pieces_partition_the_chunk() -> None:
    plan = WireFaultPlan(partial_write_prob=1.0, max_partial_bytes=4)
    injector = plan.injector(0, "send")
    data = bytes(range(41))
    pieces = injector.pieces(data)
    assert len(pieces) > 1
    assert all(1 <= len(p) <= 4 for p in pieces)
    assert b"".join(pieces) == data
    assert injector.counts["partial"] == 1


def test_throttle_pacing_math() -> None:
    injector = WireFaultPlan(throttle_bytes_per_s=1000).injector(0, "send")
    assert injector.throttle_seconds(500) == pytest.approx(0.5)
    assert WireFaultPlan().injector(0, "send").throttle_seconds(500) == 0.0


def test_partial_writes_preserve_the_protocol(upstream) -> None:
    """Frames chopped into tiny pieces still reassemble: the newline
    protocol is boundary-agnostic, and the proxy proves it."""
    plan = WireFaultPlan(seed=7, partial_write_prob=1.0, max_partial_bytes=3)
    proxy = ProxyThread(ChaosProxy(plan, upstream.host, upstream.port))
    try:
        with ServeClient.connect(proxy.host, proxy.port, timeout=30.0) as client:
            for _ in range(3):
                [answer] = client.query("s", [knows_query("p1", Crashed("p2"), 0, 2)])
                assert answer["ok"] is True
    finally:
        proxy.close()
    # Fault counts are absorbed as connections close; after stop() the
    # summary is final.
    assert proxy.proxy.summary()["partial"] > 0


def test_disconnect_surfaces_as_a_transport_error(upstream) -> None:
    plan = WireFaultPlan(seed=1, disconnect_prob=1.0)
    proxy = ProxyThread(ChaosProxy(plan, upstream.host, upstream.port))
    try:
        client = ServeClient.connect(proxy.host, proxy.port, timeout=5.0)
        with pytest.raises((ConnectionError, OSError)):
            client.ping()
        client.close()
    finally:
        proxy.close()
    assert proxy.proxy.summary()["disconnected"] >= 1


def test_upstream_refusal_is_counted_not_crashed() -> None:
    # Point the proxy at a dead port: the client sees a dropped
    # connection, the proxy stays up and counts it.
    import socket

    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    dead_port = probe.getsockname()[1]
    probe.close()
    proxy = ProxyThread(ChaosProxy(WireFaultPlan(), "127.0.0.1", dead_port))
    try:
        with pytest.raises((ConnectionError, OSError)):
            with ServeClient.connect(proxy.host, proxy.port, timeout=5.0) as client:
                client.ping()
    finally:
        proxy.close()
    assert proxy.proxy.summary()["upstream_refused"] == 1
