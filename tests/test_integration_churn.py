"""Long mixed-scenario integration tests: many actions, staggered
crashes, layered wrappers, partitions -- everything at once."""

from repro.core.properties import actions_in, udc_holds
from repro.core.protocols import StrongFDUDCProcess
from repro.detectors.conversions import with_gossip
from repro.detectors.heartbeat import with_heartbeats
from repro.detectors.standard import ImpermanentWeakOracle, PerfectOracle
from repro.harness.stats import RunStats, detection_latency
from repro.model.causality import causal_graph, is_consistent_cut, time_cut_frontier
from repro.model.context import make_process_ids
from repro.model.serialize import run_from_dict, run_to_dict
from repro.sim.executor import ExecutionConfig, Executor
from repro.sim.failures import CrashPlan
from repro.sim.network import ChannelConfig, Partition
from repro.sim.process import uniform_protocol
from repro.workloads.generators import action_id, stream_workload

import networkx as nx

PROCS = make_process_ids(5)


def churn_run(seed=0):
    """Ten streamed actions, two staggered crashes, lossy channel."""
    workload = stream_workload(PROCS, count=10, spacing=7)
    # Drop actions of the processes that crash before their init.
    plan = CrashPlan.of({"p2": 25, "p5": 50})
    workload = [
        (t, p, a)
        for t, p, a in workload
        if plan.crash_tick(p) is None or t < plan.crash_tick(p)
    ]
    return (
        Executor(
            PROCS,
            uniform_protocol(StrongFDUDCProcess),
            crash_plan=plan,
            workload=workload,
            detector=PerfectOracle(),
            seed=seed,
        ).run(),
        workload,
    )


class TestChurn:
    def test_udc_for_every_action(self):
        for seed in range(3):
            run, workload = churn_run(seed)
            assert len(actions_in(run)) >= 6
            verdict = udc_holds(run)
            assert verdict, verdict.witness

    def test_stats_sane(self):
        run, _ = churn_run()
        stats = RunStats.of(run)
        assert stats.faulty == 2
        assert stats.do_events >= 6 * 3  # each action done by >= 3 survivors
        assert 0 < stats.delivery_ratio <= 1

    def test_detection_latencies_bounded(self):
        run, _ = churn_run()
        lat = detection_latency(run)
        assert set(lat) == {"p2", "p5"}
        assert all(v < 20 for v in lat.values())

    def test_causal_structure_intact(self):
        run, _ = churn_run()
        g = causal_graph(run)
        assert nx.is_directed_acyclic_graph(g)
        for m in range(0, run.duration + 1, 17):
            assert is_consistent_cut(run, time_cut_frontier(run, m))

    def test_serialization_round_trip_at_scale(self):
        run, _ = churn_run()
        assert run_from_dict(run_to_dict(run)) == run


class TestLayeredWrappers:
    def test_gossip_plus_heartbeat_plus_protocol(self):
        """Three layers deep: heartbeat(gossip(protocol)) still attains
        UDC with an impermanent-weak oracle."""
        factory = with_heartbeats(
            with_gossip(uniform_protocol(StrongFDUDCProcess)),
            beat_count=8,
        )
        run = Executor(
            PROCS,
            factory,
            crash_plan=CrashPlan.of({"p4": 9}),
            workload=[(1, "p1", action_id("p1", "layered"))],
            detector=ImpermanentWeakOracle(retract_after=4),
            seed=0,
        ).run()
        verdict = udc_holds(run)
        assert verdict, verdict.witness

    def test_partition_plus_crash_plus_churn(self):
        partitions = (Partition(10, 35, frozenset({"p1", "p2"})),)
        config = ExecutionConfig(
            channel=ChannelConfig(drop_prob=0.25, partitions=partitions),
            validate=False,
        )
        workload = [
            (1, "p1", action_id("p1", "x0")),
            (15, "p3", action_id("p3", "x1")),  # initiated mid-partition
            (45, "p4", action_id("p4", "x2")),  # after healing
        ]
        run = Executor(
            PROCS,
            uniform_protocol(StrongFDUDCProcess, resend_rounds=80),
            crash_plan=CrashPlan.of({"p5": 20}),
            workload=workload,
            detector=PerfectOracle(),
            config=config,
            seed=1,
        ).run()
        verdict = udc_holds(run)
        assert verdict, verdict.witness

    def test_slow_scheduling_with_everything(self):
        config = ExecutionConfig(activation_prob=0.6, max_consecutive_skips=4)
        run = Executor(
            PROCS,
            with_gossip(uniform_protocol(StrongFDUDCProcess)),
            crash_plan=CrashPlan.of({"p3": 12}),
            workload=stream_workload(PROCS, count=4, spacing=10),
            detector=ImpermanentWeakOracle(retract_after=5),
            config=config,
            seed=2,
        ).run()
        verdict = udc_holds(run)
        assert verdict, verdict.witness
