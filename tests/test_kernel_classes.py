"""Unit tests for the class-based epistemic kernel: history interning,
equivalence classes, crash bitmasks, KernelStats, cache inheritance on
restrict/union, and the foreign-run cache fix in the model checker."""

import gc


from repro.knowledge import Crashed, Knows, ModelChecker
from repro.knowledge.formulas import Atom
from repro.model.events import CrashEvent, DoEvent, Message, ReceiveEvent, SendEvent
from repro.model.history import EMPTY_HISTORY, History, HistoryInterner
from repro.model.run import Point, Run
from repro.model.synthetic import synthetic_system
from repro.model.system import System

PROCS = ("p1", "p2", "p3")


def run_with(timelines, duration=6):
    return Run(PROCS, timelines, duration)


def crash_run():
    msg = Message("p3-down")
    return run_with(
        {
            "p1": [(4, ReceiveEvent("p1", "p2", msg))],
            "p2": [(3, SendEvent("p2", "p1", msg))],
            "p3": [(2, CrashEvent("p3"))],
        }
    )


def no_crash_run():
    msg = Message("p3-down")
    return run_with(
        {
            "p1": [],
            "p2": [(3, SendEvent("p2", "p1", msg))],
            "p3": [],
        }
    )


class TestHistoryInterner:
    def test_equal_histories_intern_to_one_node(self):
        interner = HistoryInterner()
        a = History([DoEvent("p1", ("p1", "a0")), DoEvent("p1", ("p1", "a1"))])
        b = History([DoEvent("p1", ("p1", "a0")), DoEvent("p1", ("p1", "a1"))])
        assert a is not b and a == b
        assert interner.intern(a) is interner.intern(b)

    def test_invariant_eq_iff_identity(self):
        interner = HistoryInterner()
        e1 = DoEvent("p1", ("p1", "a0"))
        e2 = DoEvent("p1", ("p1", "a1"))
        pool = [
            History([e1]),
            History([e1]),
            History([e2]),
            History([e1, e2]),
            History([e1, e2]),
            History([e2, e1]),
        ]
        for a in pool:
            for b in pool:
                assert (a == b) == (interner.intern(a) is interner.intern(b))

    def test_empty_history_is_preinterned(self):
        interner = HistoryInterner()
        assert interner.intern(History()) is EMPTY_HISTORY

    def test_hit_miss_counters(self):
        interner = HistoryInterner()
        h = History([DoEvent("p1", ("p1", "a0"))])
        interner.intern(h)
        assert interner.misses == 1
        interner.intern(History([DoEvent("p1", ("p1", "a0"))]))
        assert interner.hits == 1


class TestCrashMasks:
    def test_masks_match_crashed_by(self):
        r = crash_run()
        masks = r.crash_masks()
        assert len(masks) == r.duration + 1
        for m in range(r.duration + 1):
            for i, p in enumerate(PROCS):
                assert bool((masks[m] >> i) & 1) == r.crashed_by(p, m)

    def test_masks_cached(self):
        r = crash_run()
        assert r.crash_masks() is r.crash_masks()


class TestEquivClasses:
    def test_classes_partition_points(self):
        s = System([crash_run(), no_crash_run()])
        for p in PROCS:
            classes = s.classes(p)
            total = sum(c.size for c in classes)
            assert total == s.point_count
            ids = [s.point_id(pt) for c in classes for pt in c.points]
            assert sorted(ids) == list(range(s.point_count))

    def test_class_of_consistency(self):
        s = System([crash_run(), no_crash_run()])
        for p in PROCS:
            for run in s.runs:
                for m in range(run.duration + 1):
                    pt = Point(run, m)
                    cls = s.class_of(p, pt)
                    assert pt in cls.points
                    assert cls.history == pt.history(p)

    def test_known_crashed_mask_is_and_of_point_masks(self):
        s = System([crash_run(), no_crash_run()])
        for p in PROCS:
            for cls in s.classes(p):
                acc = -1
                for mask in cls.point_masks:
                    acc &= mask
                assert cls.known_crashed_mask == acc

    def test_class_histories_are_canonical(self):
        s = System([crash_run(), no_crash_run()])
        for p in PROCS:
            for cls in s.classes(p):
                assert s.interner.intern(cls.history) is cls.history

    def test_point_id_roundtrip(self):
        s = System([crash_run(), no_crash_run()])
        for i, run in enumerate(s.runs):
            for m in range(run.duration + 1):
                pid = s.point_id(Point(run, m))
                assert s.point_key(pid) == (i, m)
                assert s.point_at(pid) == Point(run, m)

    def test_point_id_clamps_beyond_duration(self):
        s = System([crash_run()])
        r = s.runs[0]
        assert s.point_id(Point(r, r.duration + 5)) == s.point_id(
            Point(r, r.duration)
        )

    def test_foreign_run_has_no_point_id(self):
        s = System([crash_run()])
        foreign = run_with({"p1": [], "p2": [], "p3": []}, duration=2)
        assert s.point_id(Point(foreign, 0)) is None


class TestVacuity:
    """A point whose history occurs nowhere in the system has an empty
    candidate set; K_p is then vacuously true.  Pinned here because the
    docs warn about it (see System.knows)."""

    def test_foreign_history_knows_everything(self):
        s = System([no_crash_run()])
        foreign_pt = Point(crash_run(), 4)  # p1 received: history not in s
        assert s.knows("p1", foreign_pt, lambda pt: False)
        assert s.knows_crashed("p1", foreign_pt, "p3")
        assert s.known_crashed_set("p1", foreign_pt) == frozenset(PROCS)
        assert s.known_crash_count("p1", foreign_pt, frozenset(PROCS)) == 0


class TestKernelStats:
    def test_index_builds_count_processes(self):
        s = System([crash_run(), no_crash_run()])
        assert s.stats.index_builds == 0
        s.classes("p1")
        s.classes("p1")
        assert s.stats.index_builds == 1
        s.classes("p2")
        assert s.stats.index_builds == 2
        assert s.stats.points_indexed == 2 * s.point_count
        assert s.stats.classes_built >= 2

    def test_checker_shares_system_stats(self):
        s = System([crash_run(), no_crash_run()])
        mc = ModelChecker(s)
        assert mc.stats is s.stats
        phi = Knows("p1", Crashed("p3"))
        mc.holds(phi, Point(s.runs[0], 4))
        assert mc.stats.knows_class_evals >= 1
        assert mc.stats.local_cache_misses >= 1
        mc.holds(phi, Point(s.runs[0], 4))
        assert mc.stats.local_cache_hits >= 1

    def test_intern_counters_surface(self):
        s = System([crash_run(), no_crash_run()])
        s.classes("p1")
        st = s.stats
        assert st.intern_hits + st.intern_misses >= s.point_count

    def test_as_dict_and_merge(self):
        s = System([crash_run()])
        s.classes("p1")
        d = s.stats.as_dict()
        assert d["index_builds"] == 1
        other = System([no_crash_run()])
        other.classes("p1")
        merged = s.stats.merge(other.stats)
        assert merged.index_builds == 2

    def test_render_mentions_classes(self):
        s = System([crash_run()])
        s.classes("p1")
        assert "classes" in s.stats.render()


class TestRestrictInheritance:
    def test_no_reindex_on_restrict(self):
        parent = System([crash_run(), no_crash_run()])
        for p in PROCS:
            parent.classes(p)
        child = parent.restrict(lambda r: not r.faulty())
        assert len(child) == 1
        for p in PROCS:
            child.classes(p)  # must be served from the derived tables
        assert child.stats.index_builds == 0
        assert child.stats.index_derivations == len(PROCS)

    def test_restrict_shares_interner(self):
        parent = System([crash_run(), no_crash_run()])
        child = parent.restrict(lambda r: True)
        assert child.interner is parent.interner

    def test_unfiltered_classes_are_shared_objects(self):
        parent = System([crash_run(), no_crash_run()])
        parent.classes("p1")
        child = parent.restrict(lambda r: True)  # keeps everything
        parent_classes = {c.history: c for c in parent.classes("p1")}
        for cls in child.classes("p1"):
            assert parent_classes[cls.history] is cls

    def test_restricted_knowledge_matches_fresh_system(self):
        parent = System([crash_run(), no_crash_run()])
        for p in PROCS:
            parent.classes(p)
        kept = [r for r in parent.runs if r.faulty()]
        child = parent.restrict(lambda r: r.faulty())
        fresh = System(kept)
        for p in PROCS:
            for run in kept:
                for m in range(run.duration + 1):
                    pt = Point(run, m)
                    assert child.known_crashed_set(p, pt) == fresh.known_crashed_set(p, pt)
                    assert child.known_crash_count(
                        p, pt, frozenset(PROCS)
                    ) == fresh.known_crash_count(p, pt, frozenset(PROCS))

    def test_restrict_before_any_index_stays_lazy(self):
        parent = System([crash_run(), no_crash_run()])
        child = parent.restrict(lambda r: r.faulty())
        # Nothing was built in the parent, so the child builds its own.
        child.classes("p1")
        assert child.stats.index_builds == 1


class TestUnionInheritance:
    def test_union_derives_built_tables(self):
        a = System([crash_run()])
        b = System([no_crash_run()])
        for p in PROCS:
            a.classes(p)
        u = a.union(b)
        for p in PROCS:
            u.classes(p)
        assert u.stats.index_builds == 0
        assert u.stats.index_derivations == len(PROCS)

    def test_union_knowledge_matches_fresh_system(self):
        a = System([crash_run()])
        b = System([no_crash_run()])
        for p in PROCS:
            a.classes(p)
        u = a.union(b)
        fresh = System([crash_run(), no_crash_run()])
        for p in PROCS:
            for run in fresh.runs:
                for m in range(run.duration + 1):
                    pt = Point(run, m)
                    assert u.known_crashed_set(p, pt) == fresh.known_crashed_set(p, pt)

    def test_union_still_dedupes(self):
        a = System([crash_run()])
        b = System([crash_run(), no_crash_run()])
        assert len(a.union(b)) == 2

    def test_union_point_order_matches_fresh_build(self):
        a = System([crash_run()])
        b = System([no_crash_run()])
        a.classes("p1")
        u = a.union(b)
        fresh = System([crash_run(), no_crash_run()])
        for cu, cf in zip(u.classes("p1"), fresh.classes("p1")):
            assert cu.history == cf.history
            assert cu.points == cf.points
            assert cu.point_masks == cf.point_masks


class TestForeignRunCacheFix:
    """Regression for the old ``-1 - (id(run) % (1 << 30))`` fallback:
    distinct foreign runs could collide (or a freed id could alias a new
    run), poisoning the point/temporal caches."""

    def _flag_formula(self):
        # Non-local, so evaluation goes through the point cache keyed on
        # (formula, run_id, time).
        return Atom("meta-flag", lambda pt: bool(pt.run.meta.get("flag")))

    def test_distinct_foreign_runs_get_distinct_ids(self):
        s = System([no_crash_run()])
        mc = ModelChecker(s)
        f1 = run_with({"p1": [], "p2": [], "p3": []}, duration=1)
        f2 = run_with({"p1": [], "p2": [], "p3": []}, duration=2)
        assert mc._run_id(f1) != mc._run_id(f2)
        assert mc._run_id(f1) == mc._run_id(f1)

    def test_foreign_runs_are_pinned_against_id_reuse(self):
        s = System([no_crash_run()])
        mc = ModelChecker(s)
        seen = set()
        for i in range(50):
            f = run_with({"p1": [], "p2": [], "p3": []}, duration=i + 1)
            seen.add(mc._run_id(f))
            del f
            gc.collect()
        # Every allocation got a fresh id even though the objects were
        # dropped by the caller: the checker pins them.
        assert len(seen) == 50
        assert len(mc._foreign_refs) == 50

    def test_foreign_cache_entries_do_not_alias(self):
        s = System([no_crash_run()])
        mc = ModelChecker(s)
        phi = self._flag_formula()
        flagged = Run(PROCS, {p: [] for p in PROCS}, 3, meta={"flag": True})
        plain = Run(PROCS, {p: [] for p in PROCS}, 3, meta={"flag": False})
        # Same timelines and duration (equal runs differ only in meta,
        # which equality ignores) -- but identity-keyed foreign ids must
        # still keep their cache entries apart.
        assert mc.holds(phi, Point(flagged, 0)) is True
        assert mc.holds(phi, Point(plain, 0)) is False
        assert mc.holds(phi, Point(flagged, 0)) is True


class TestSyntheticGenerator:
    def test_deterministic(self):
        a = synthetic_system(4, 6, seed=7)
        b = synthetic_system(4, 6, seed=7)
        assert a.runs == b.runs

    def test_histories_overlap_across_runs(self):
        s = synthetic_system(4, 12, seed=1)
        # The small alphabet must actually produce shared classes.
        assert any(cls.size > 1 for p in s.processes for cls in s.classes(p))

    def test_crash_is_terminal(self):
        s = synthetic_system(5, 10, seed=3, crash_prob=0.8)
        for run in s.runs:
            for p in run.processes:
                events = list(run.events(p))
                for e in events[:-1]:
                    assert not isinstance(e, CrashEvent)
