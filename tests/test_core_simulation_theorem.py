"""Tests for the f / f' run transformations (Theorems 3.6 and 4.3)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocols import StrongFDUDCProcess
from repro.core.simulation_theorem import (
    simulate_generalized_detectors,
    simulate_perfect_detectors,
    subset_order,
    transform_run_f,
    transform_run_f_prime,
)
from repro.detectors.properties import (
    generalized_strong_accuracy,
    strong_accuracy,
    strong_completeness,
)
from repro.detectors.standard import LyingOracle, PerfectOracle
from repro.model.context import make_process_ids
from repro.model.events import SuspectEvent
from repro.model.run import validate_run
from repro.model.system import System
from repro.sim.ensembles import a5t_ensemble
from repro.sim.executor import Executor
from repro.sim.failures import sample_crash_plan
from repro.sim.process import uniform_protocol
from repro.workloads.generators import post_crash_workload, single_action

import random

PROCS = make_process_ids(3)


def small_system(detector=None, seeds=(0,)):
    return a5t_ensemble(
        PROCS,
        uniform_protocol(StrongFDUDCProcess),
        t=2,
        workload=lambda plan: post_crash_workload(
            PROCS, plan, actions_per_survivor=1
        ),
        detector=detector or PerfectOracle(),
        seeds=seeds,
    )


class TestSubsetOrder:
    def test_binary_counting(self):
        order = subset_order(("p1", "p2"))
        assert order == (
            frozenset(),
            frozenset({"p1"}),
            frozenset({"p2"}),
            frozenset({"p1", "p2"}),
        )

    def test_covers_powerset(self):
        order = subset_order(PROCS)
        assert len(order) == 8
        assert len(set(order)) == 8
        assert frozenset(PROCS) in order

    def test_deterministic_across_orderings(self):
        assert subset_order(("p2", "p1")) == subset_order(("p1", "p2"))


class TestTransformStructure:
    def setup_method(self):
        self.system = small_system()
        self.run = next(r for r in self.system if r.faulty())
        self.out = transform_run_f(self.run, self.system)

    def test_duration_doubles(self):
        assert self.out.duration == 2 * self.run.duration + 1

    def test_original_fd_events_deleted(self):
        # P2: the original detector's reports do not survive into f(r).
        for p in PROCS:
            for e in self.out.events(p):
                if isinstance(e, SuspectEvent):
                    assert e.derived

    def test_non_fd_events_preserved_in_order(self):
        for p in PROCS:
            original = [
                e for e in self.run.events(p) if not isinstance(e, SuspectEvent)
            ]
            copied = [
                e for e in self.out.events(p) if not isinstance(e, SuspectEvent)
            ]
            assert original == copied

    def test_original_events_at_even_times(self):
        for p in PROCS:
            for t, e in self.out.timeline(p):
                if not isinstance(e, SuspectEvent) or not e.derived:
                    assert t % 2 == 0

    def test_derived_reports_at_odd_times(self):
        for p in PROCS:
            for t, e in self.out.timeline(p):
                if isinstance(e, SuspectEvent) and e.derived:
                    assert t % 2 == 1

    def test_r4_preserved(self):
        validate_run(self.out, check_r5=False)

    def test_crash_time_doubles(self):
        victim = next(iter(self.run.faulty()))
        assert self.out.crash_time(victim) == 2 * self.run.crash_time(victim)

    def test_every_live_odd_step_has_report(self):
        # P3 appends a derived report at EVERY odd step before a crash.
        for p in PROCS:
            crash = self.out.crash_time(p)
            horizon = crash if crash is not None else self.out.duration
            derived_times = {
                t
                for t, e in self.out.timeline(p)
                if isinstance(e, SuspectEvent) and e.derived
            }
            expected = {
                2 * m + 1
                for m in range(self.run.duration + 1)
                if 2 * m + 1 < (horizon if crash is not None else horizon + 1)
            }
            assert derived_times == expected


class TestTheorem36:
    def test_simulated_detectors_perfect(self):
        system = small_system(seeds=(0, 1))
        rf = simulate_perfect_detectors(system)
        for r in rf:
            assert strong_accuracy(r, derived=True)
            assert strong_completeness(r, derived=True)

    def test_accuracy_holds_for_any_ensemble(self):
        """Veridicality: derived accuracy is a theorem of the semantics,
        even when the underlying oracle lies."""
        runs = []
        for seed in range(3):
            runs.append(
                Executor(
                    PROCS,
                    uniform_protocol(StrongFDUDCProcess),
                    crash_plan=sample_crash_plan(
                        random.Random(seed), PROCS, crash_prob=0.4, horizon=15
                    ),
                    workload=single_action("p1", tick=1),
                    detector=LyingOracle(),
                    seed=seed,
                ).run()
            )
        system = System(runs)
        rf = simulate_perfect_detectors(system)
        assert all(strong_accuracy(r, derived=True) for r in rf)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 500))
    def test_accuracy_property_random_ensembles(self, seed):
        rng = random.Random(seed)
        runs = []
        for i in range(2):
            runs.append(
                Executor(
                    PROCS,
                    uniform_protocol(StrongFDUDCProcess),
                    crash_plan=sample_crash_plan(
                        rng, PROCS, max_failures=2, crash_prob=0.5, horizon=12
                    ),
                    workload=single_action("p1", tick=1),
                    detector=PerfectOracle(),
                    seed=rng.randrange(1 << 16),
                ).run()
            )
        rf = simulate_perfect_detectors(System(runs))
        assert all(strong_accuracy(r, derived=True) for r in rf)


class TestTheorem43:
    def test_f_prime_reports_are_generalized(self):
        system = small_system()
        run = system.runs[0]
        out = transform_run_f_prime(run, system)
        from repro.model.events import GeneralizedSuspicion

        derived = [
            e
            for p in PROCS
            for e in out.events(p)
            if isinstance(e, SuspectEvent) and e.derived
        ]
        assert derived
        assert all(isinstance(e.report, GeneralizedSuspicion) for e in derived)

    def test_subset_index_follows_history_length(self):
        system = small_system()
        run = system.runs[0]
        out = transform_run_f_prime(run, system)
        order = subset_order(PROCS)
        for p in PROCS:
            for t, e in out.timeline(p):
                if isinstance(e, SuspectEvent) and e.derived:
                    m = (t - 1) // 2
                    hist_len = len(run.history(p, min(m + 1, run.duration)))
                    assert e.report.suspects == order[hist_len % len(order)]

    def test_generalized_accuracy_any_ensemble(self):
        system = small_system(detector=LyingOracle())
        rfp = simulate_generalized_detectors(system)
        assert all(generalized_strong_accuracy(r, derived=True) for r in rfp)

    def test_counts_bounded_by_subset_size(self):
        system = small_system()
        rfp = simulate_generalized_detectors(system)
        for r in rfp:
            for p in PROCS:
                for e in r.events(p):
                    if isinstance(e, SuspectEvent) and e.derived:
                        assert e.report.count <= len(e.report.suspects)


class TestEnsembleKnowledgeEffects:
    def test_larger_ensembles_know_less(self):
        """Adding runs can only remove knowledge: derived suspicion sets
        shrink pointwise as the ensemble grows."""
        small = small_system(seeds=(0,))
        big = small_system(seeds=(0, 1, 2))
        from repro.model.run import Point

        run = small.runs[0]
        assert run in big.runs
        for m in range(0, run.duration, 7):
            for p in PROCS:
                s_small = small.known_crashed_set(p, Point(run, m))
                s_big = big.known_crashed_set(p, Point(run, m))
                assert s_big <= s_small
