"""Fixture-driven tests for every repro.lint rule.

Each known-bad fixture under ``tests/fixtures/lint/`` marks its
violations with ``expect: RULE`` inside a comment; the test lints the
fixture and requires the findings to match the markers *exactly* —
same rule ids, same line numbers, nothing extra.  That proves both
directions: every shipped rule fires on its known-bad input, and the
rules stay quiet on the adjacent known-good code in the same file.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.lint import (
    LintFinding,
    ModuleUnderLint,
    Severity,
    all_rules,
    known_rule_ids,
    lint_file,
    lint_paths,
)
from repro.lint.context import module_name_for_path

FIXTURES = Path(__file__).parent / "fixtures" / "lint"

_EXPECT_RE = re.compile(r"expect:\s*([A-Z]+[0-9]+)")

FIXTURE_FILES = sorted(p.name for p in FIXTURES.glob("*.py"))


def expected_findings(path: Path) -> set[tuple[int, str]]:
    out: set[tuple[int, str]] = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for rule in _EXPECT_RE.findall(line):
            out.add((lineno, rule))
    return out


def actual_findings(path: Path) -> list[LintFinding]:
    findings, parse_error = lint_file(path, all_rules())
    assert parse_error is None, parse_error
    return findings


@pytest.mark.parametrize("name", FIXTURE_FILES)
def test_fixture_findings_match_expect_markers(name: str) -> None:
    path = FIXTURES / name
    expected = expected_findings(path)
    actual = {(f.line, f.rule) for f in actual_findings(path)}
    assert actual == expected, (
        f"{name}: findings {sorted(actual)} != expected {sorted(expected)}"
    )


def test_every_rule_has_a_known_bad_fixture() -> None:
    """Acceptance criterion: each shipped rule is demonstrated by at
    least one fixture that the suite asserts it flags."""
    demonstrated: set[str] = set()
    for name in FIXTURE_FILES:
        demonstrated |= {rule for _, rule in expected_findings(FIXTURES / name)}
    assert demonstrated == set(known_rule_ids())


def test_expect_markers_name_real_rules() -> None:
    for name in FIXTURE_FILES:
        for _, rule in expected_findings(FIXTURES / name):
            assert rule in known_rule_ids(), f"{name} expects unknown {rule}"


def test_findings_carry_location_severity_and_hint() -> None:
    findings = actual_findings(FIXTURES / "det001_unseeded_random.py")
    assert findings, "expected DET001 findings"
    for finding in findings:
        assert finding.rule == "DET001"
        assert finding.severity is Severity.ERROR
        assert finding.line > 0 and finding.col >= 0
        assert "random" in finding.message
        assert finding.hint
        rendered = finding.render()
        assert rendered.startswith(finding.file)
        assert f":{finding.line}:" in rendered
        assert "DET001" in rendered


def test_pool003_is_warning_severity() -> None:
    findings = actual_findings(FIXTURES / "pool003_local_class.py")
    assert findings and all(f.severity is Severity.WARNING for f in findings)


def test_suppressions_silence_real_violations() -> None:
    assert actual_findings(FIXTURES / "suppressed_clean.py") == []


def test_clean_fixture_has_no_findings() -> None:
    assert actual_findings(FIXTURES / "clean" / "ok_module.py") == []


def test_protocol_class_scoping() -> None:
    """DET rules reach Protocol classes outside the DET packages, and
    only the class bodies — the module-level helper stays unflagged."""
    path = FIXTURES / "det_scope_protocol_class.py"
    mod = ModuleUnderLint(path, str(path), path.read_text())
    assert mod.module is None  # no lint-module override, outside repro
    assert len(mod.protocol_class_ranges) == 2  # base + in-file subclass
    lines = {f.line for f in actual_findings(path)}
    source_lines = path.read_text().splitlines()
    helper_line = next(
        i for i, text in enumerate(source_lines, start=1) if "driver_helper" in text
    )
    assert all(line > helper_line for line in lines)


def test_module_name_for_path() -> None:
    assert (
        module_name_for_path(Path("/x/src/repro/model/system.py"))
        == "repro.model.system"
    )
    assert module_name_for_path(Path("/x/src/repro/model/__init__.py")) == (
        "repro.model"
    )
    assert module_name_for_path(Path("/x/elsewhere/file.py")) is None


def test_lint_paths_is_deterministic_and_sorted() -> None:
    first = lint_paths([FIXTURES])
    second = lint_paths([FIXTURES])
    assert first.findings == second.findings
    assert first.as_dict() == second.as_dict()
    keys = [(f.file, f.line, f.col, f.rule) for f in first.findings]
    assert keys == sorted(keys)
    assert first.failed and first.errors


def test_select_restricts_rules() -> None:
    report = lint_paths([FIXTURES], select=lambda rid: rid == "DET001")
    assert report.findings and all(f.rule == "DET001" for f in report.findings)


def test_source_tree_is_lint_clean() -> None:
    """The analyzer's own contract with this repository: src/repro is
    clean (all remaining sites carry audited suppressions)."""
    src = Path(__file__).parent.parent / "src" / "repro"
    report = lint_paths([src])
    assert not report.parse_errors
    assert report.findings == (), "\n".join(
        f.render() for f in report.findings
    )
