"""Unit tests for the DC1-DC3 / DC2' checkers on hand-crafted runs."""

from repro.core.properties import (
    actions_in,
    dc1,
    dc2,
    dc2_prime,
    dc3,
    nudc_holds,
    system_nudc,
    system_udc,
    udc_holds,
)
from repro.model.events import CrashEvent, DoEvent, InitEvent
from repro.model.run import Run
from repro.model.system import System

PROCS = ("p1", "p2", "p3")
A = ("p1", "a")


def build(timelines, duration=20):
    return Run(PROCS, timelines, duration)


def full_udc_run():
    return build(
        {
            "p1": [(1, InitEvent("p1", A)), (3, DoEvent("p1", A))],
            "p2": [(5, DoEvent("p2", A))],
            "p3": [(6, DoEvent("p3", A))],
        }
    )


class TestDC1:
    def test_vacuous_without_init(self):
        assert dc1(build({"p1": [], "p2": [], "p3": []}), A)

    def test_satisfied_by_do(self):
        assert dc1(full_udc_run(), A)

    def test_satisfied_by_crash(self):
        r = build(
            {"p1": [(1, InitEvent("p1", A)), (2, CrashEvent("p1"))], "p2": [], "p3": []}
        )
        assert dc1(r, A)

    def test_violated_by_stalled_initiator(self):
        r = build({"p1": [(1, InitEvent("p1", A))], "p2": [], "p3": []})
        verdict = dc1(r, A)
        assert not verdict
        assert "p1" in verdict.witness


class TestDC2:
    def test_vacuous_without_performers(self):
        assert dc2(build({"p1": [(1, InitEvent("p1", A))], "p2": [], "p3": []}), A)

    def test_all_perform(self):
        assert dc2(full_udc_run(), A)

    def test_crash_discharges_obligation(self):
        r = build(
            {
                "p1": [(1, InitEvent("p1", A)), (3, DoEvent("p1", A))],
                "p2": [(5, DoEvent("p2", A))],
                "p3": [(4, CrashEvent("p3"))],
            }
        )
        assert dc2(r, A)

    def test_uniformity_counts_faulty_performers(self):
        # The key UDC clause: p1 performs then crashes; correct p2 is
        # still obliged.
        r = build(
            {
                "p1": [
                    (1, InitEvent("p1", A)),
                    (3, DoEvent("p1", A)),
                    (4, CrashEvent("p1")),
                ],
                "p2": [],
                "p3": [(9, DoEvent("p3", A))],
            }
        )
        assert not dc2(r, A)

    def test_dc2_prime_excuses_faulty_performer(self):
        r = build(
            {
                "p1": [
                    (1, InitEvent("p1", A)),
                    (3, DoEvent("p1", A)),
                    (4, CrashEvent("p1")),
                ],
                "p2": [],
                "p3": [],
            }
        )
        assert not dc2(r, A)
        assert dc2_prime(r, A)

    def test_dc2_prime_binds_correct_performer(self):
        r = build(
            {
                "p1": [(1, InitEvent("p1", A)), (3, DoEvent("p1", A))],
                "p2": [],
                "p3": [],
            }
        )
        assert not dc2_prime(r, A)


class TestDC3:
    def test_do_without_init_rejected(self):
        r = build({"p1": [], "p2": [(3, DoEvent("p2", A))], "p3": []})
        verdict = dc3(r, A)
        assert not verdict
        assert "never initiated" in verdict.witness

    def test_do_before_init_rejected(self):
        r = build(
            {
                "p1": [(5, InitEvent("p1", A))],
                "p2": [(3, DoEvent("p2", A))],
                "p3": [],
            }
        )
        assert not dc3(r, A)

    def test_do_at_init_time_allowed(self):
        # The init and a do in the same cut: init_p(alpha) already holds.
        r = build(
            {
                "p1": [(3, InitEvent("p1", A))],
                "p2": [(3, DoEvent("p2", A))],
                "p3": [],
            }
        )
        assert dc3(r, A)

    def test_proper_order(self):
        assert dc3(full_udc_run(), A)


class TestAggregates:
    def test_udc_holds_for_specific_action(self):
        assert udc_holds(full_udc_run(), A)

    def test_udc_checks_all_actions(self):
        b = ("p2", "b")
        r = build(
            {
                "p1": [(1, InitEvent("p1", A)), (3, DoEvent("p1", A))],
                "p2": [
                    (2, InitEvent("p2", b)),
                    (4, DoEvent("p2", A)),
                    (5, DoEvent("p2", b)),
                ],
                "p3": [(6, DoEvent("p3", A))],  # never does b
            }
        )
        assert udc_holds(r, A)
        assert not udc_holds(r, b)
        assert not udc_holds(r)

    def test_udc_catches_uninitiated_do(self):
        r = build({"p1": [], "p2": [(3, DoEvent("p2", A))], "p3": []})
        assert not udc_holds(r)  # via DC3, even with no init events

    def test_nudc_aggregate(self):
        r = build(
            {
                "p1": [
                    (1, InitEvent("p1", A)),
                    (3, DoEvent("p1", A)),
                    (4, CrashEvent("p1")),
                ],
                "p2": [],
                "p3": [],
            }
        )
        assert nudc_holds(r)
        assert not udc_holds(r)

    def test_actions_in(self):
        assert actions_in(full_udc_run()) == {A}
        assert actions_in(build({"p1": [], "p2": [], "p3": []})) == set()

    def test_system_level(self):
        good = full_udc_run()
        bad = build(
            {"p1": [(1, InitEvent("p1", A)), (3, DoEvent("p1", A))], "p2": [], "p3": []}
        )
        assert system_udc(System([good]))
        verdict = system_udc(System([good, bad]))
        assert not verdict and "run 1" in verdict.witness
        assert not system_nudc(System([bad]))
