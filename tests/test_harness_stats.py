"""Tests for the run-metrics module."""

from repro.core.protocols import StrongFDUDCProcess
from repro.detectors.standard import PerfectOracle
from repro.harness.stats import (
    RunStats,
    SeriesPoint,
    action_latency,
    completion_latency,
    detection_latency,
    messages_per_action,
    render_series,
)
from repro.model.context import make_process_ids
from repro.model.events import (
    CrashEvent,
    DoEvent,
    InitEvent,
    Message,
    ReceiveEvent,
    SendEvent,
    StandardSuspicion,
    SuspectEvent,
)
from repro.model.run import Run
from repro.sim.executor import Executor
from repro.sim.failures import CrashPlan
from repro.sim.process import uniform_protocol
from repro.workloads.generators import single_action

PROCS = make_process_ids(4)
SMALL = ("p1", "p2", "p3")
A = ("p1", "a")


def protocol_run(seed=0):
    return Executor(
        PROCS,
        uniform_protocol(StrongFDUDCProcess),
        crash_plan=CrashPlan.of({"p3": 8}),
        workload=single_action("p1", tick=1),
        detector=PerfectOracle(),
        seed=seed,
    ).run()


def tiny_run():
    msg = Message("m")
    return Run(
        SMALL,
        {
            "p1": [
                (1, InitEvent("p1", A)),
                (2, SendEvent("p1", "p2", msg)),
                (3, DoEvent("p1", A)),
            ],
            "p2": [(5, ReceiveEvent("p2", "p1", msg)), (7, DoEvent("p2", A))],
            "p3": [(4, CrashEvent("p3"))],
        },
        duration=10,
    )


class TestRunStats:
    def test_counts(self):
        stats = RunStats.of(tiny_run())
        assert stats.sends == 1
        assert stats.receives == 1
        assert stats.do_events == 2
        assert stats.faulty == 1
        assert stats.delivery_ratio == 1.0

    def test_protocol_run_ratio(self):
        stats = RunStats.of(protocol_run())
        assert 0 < stats.delivery_ratio <= 1.0
        assert stats.suspect_events > 0

    def test_no_sends_ratio(self):
        r = Run(SMALL, {"p1": [], "p2": [], "p3": []}, duration=2)
        assert RunStats.of(r).delivery_ratio == 1.0


class TestLatencies:
    def test_action_latency(self):
        lat = action_latency(tiny_run(), A)
        assert lat == {"p1": 2, "p2": 6}

    def test_action_latency_unknown_action(self):
        assert action_latency(tiny_run(), ("p9", "z")) == {}

    def test_completion_latency_is_max_over_correct(self):
        assert completion_latency(tiny_run(), A) == 6

    def test_completion_none_when_correct_missing(self):
        r = Run(
            SMALL,
            {"p1": [(1, InitEvent("p1", A)), (3, DoEvent("p1", A))], "p2": [], "p3": []},
            duration=6,
        )
        assert completion_latency(r, A) is None

    def test_detection_latency(self):
        r = Run(
            SMALL,
            {
                "p3": [(4, CrashEvent("p3"))],
                "p1": [
                    (
                        9,
                        SuspectEvent("p1", StandardSuspicion(frozenset({"p3"}))),
                    )
                ],
                "p2": [],
            },
            duration=12,
        )
        assert detection_latency(r) == {"p3": 5}

    def test_detection_latency_on_protocol_run(self):
        lat = detection_latency(protocol_run())
        assert set(lat) == {"p3"}
        assert lat["p3"] >= 0


class TestCostMetrics:
    def test_messages_per_action(self):
        assert messages_per_action(tiny_run()) == 1.0

    def test_series_point(self):
        pt = SeriesPoint.of(4, [1.0, 3.0])
        assert pt.mean == 2.0 and pt.minimum == 1.0 and pt.maximum == 3.0

    def test_render_series(self):
        text = render_series(
            "title", "x", "y", [SeriesPoint.of(1, [2.0]), SeriesPoint.of(2, [4.0])]
        )
        assert "title" in text and "2.00" in text and "4.00" in text
