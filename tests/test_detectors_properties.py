"""Unit tests for the detector property checkers on hand-built runs.

Each checker gets a positive and a negative hand-crafted run, so the
checkers themselves are validated independently of the oracles."""

from repro.detectors.properties import (
    PropertyVerdict,
    atd_accuracy,
    generalized_impermanent_strong_completeness,
    generalized_strong_accuracy,
    impermanent_strong_completeness,
    impermanent_weak_completeness,
    is_perfect,
    is_strong,
    is_t_useful,
    is_weak,
    strong_accuracy,
    strong_completeness,
    system_satisfies,
    weak_accuracy,
    weak_completeness,
)
from repro.model.events import (
    CrashEvent,
    GeneralizedSuspicion,
    StandardSuspicion,
    SuspectEvent,
)
from repro.model.run import Run
from repro.model.system import System

PROCS = ("p1", "p2", "p3")


def sus(p, suspects, derived=False):
    return SuspectEvent(p, StandardSuspicion(frozenset(suspects)), derived=derived)


def gsus(p, suspects, k):
    return SuspectEvent(p, GeneralizedSuspicion(frozenset(suspects), k))


def build(timelines, duration=20):
    return Run(PROCS, timelines, duration)


class TestStrongAccuracy:
    def test_holds_when_suspicions_follow_crashes(self):
        r = build(
            {
                "p3": [(2, CrashEvent("p3"))],
                "p1": [(5, sus("p1", {"p3"}))],
                "p2": [],
            }
        )
        assert strong_accuracy(r)

    def test_violated_by_premature_suspicion(self):
        r = build(
            {
                "p3": [(8, CrashEvent("p3"))],
                "p1": [(5, sus("p1", {"p3"}))],
                "p2": [],
            }
        )
        verdict = strong_accuracy(r)
        assert not verdict
        assert "p3" in verdict.witness

    def test_violated_by_suspecting_correct(self):
        r = build({"p1": [(5, sus("p1", {"p2"}))], "p2": [], "p3": []})
        assert not strong_accuracy(r)

    def test_derived_flag_separates_streams(self):
        r = build(
            {
                "p1": [(5, sus("p1", {"p2"})), (6, sus("p1", set(), derived=True))],
                "p2": [],
                "p3": [],
            }
        )
        assert not strong_accuracy(r)  # the original stream lies
        assert strong_accuracy(r, derived=True)  # the derived one is clean


class TestWeakAccuracy:
    def test_holds_with_unsuspected_correct(self):
        r = build({"p1": [(5, sus("p1", {"p2"}))], "p2": [], "p3": []})
        assert weak_accuracy(r)  # p1 and p3 never suspected

    def test_violated_when_all_correct_suspected(self):
        r = build(
            {
                "p1": [(5, sus("p1", {"p2", "p3"}))],
                "p2": [(6, sus("p2", {"p1"}))],
                "p3": [],
            }
        )
        assert not weak_accuracy(r)

    def test_vacuous_when_everyone_crashes(self):
        r = build(
            {
                "p1": [(1, sus("p1", {"p2", "p3", "p1"})), (3, CrashEvent("p1"))],
                "p2": [(2, CrashEvent("p2"))],
                "p3": [(2, CrashEvent("p3"))],
            }
        )
        assert weak_accuracy(r)


class TestCompleteness:
    def crashed_run(self, reports_p1, reports_p2=()):
        return build(
            {
                "p3": [(2, CrashEvent("p3"))],
                "p1": list(reports_p1),
                "p2": list(reports_p2),
            }
        )

    def test_strong_completeness_needs_all_correct(self):
        r = self.crashed_run([(5, sus("p1", {"p3"}))])
        assert not strong_completeness(r)  # p2 never suspects p3
        r2 = self.crashed_run(
            [(5, sus("p1", {"p3"}))], [(6, sus("p2", {"p3"}))]
        )
        assert strong_completeness(r2)

    def test_permanence_required(self):
        # Suspicion later retracted: not permanent.
        r = self.crashed_run(
            [(5, sus("p1", {"p3"})), (9, sus("p1", set()))],
            [(6, sus("p2", {"p3"}))],
        )
        assert not strong_completeness(r)
        assert impermanent_strong_completeness(r)

    def test_resuspicion_after_retraction_counts(self):
        r = self.crashed_run(
            [(5, sus("p1", {"p3"})), (9, sus("p1", set())), (12, sus("p1", {"p3"}))],
            [(6, sus("p2", {"p3"}))],
        )
        assert strong_completeness(r)

    def test_weak_completeness_one_witness_enough(self):
        r = self.crashed_run([(5, sus("p1", {"p3"}))])
        assert weak_completeness(r)

    def test_weak_completeness_fails_with_no_witness(self):
        r = self.crashed_run([])
        assert not weak_completeness(r)

    def test_impermanent_weak(self):
        r = self.crashed_run([(5, sus("p1", {"p3"})), (9, sus("p1", set()))])
        assert impermanent_weak_completeness(r)
        assert not weak_completeness(r)

    def test_all_crash_vacuous(self):
        r = build(
            {
                "p1": [(2, CrashEvent("p1"))],
                "p2": [(2, CrashEvent("p2"))],
                "p3": [(2, CrashEvent("p3"))],
            }
        )
        assert weak_completeness(r)
        assert impermanent_weak_completeness(r)


class TestDetectorClasses:
    def test_perfect_conjunction(self):
        r = build(
            {
                "p3": [(2, CrashEvent("p3"))],
                "p1": [(5, sus("p1", {"p3"}))],
                "p2": [(6, sus("p2", {"p3"}))],
            }
        )
        assert is_perfect(r)
        assert is_strong(r)
        assert is_weak(r)

    def test_strong_not_perfect(self):
        r = build(
            {
                "p3": [(2, CrashEvent("p3"))],
                "p1": [(5, sus("p1", {"p3", "p2"}))],  # false positive on p2
                "p2": [(6, sus("p2", {"p3"}))],
            }
        )
        assert not is_perfect(r)
        assert is_strong(r)


class TestGeneralized:
    def test_accuracy_backed_by_crashes(self):
        r = build(
            {
                "p3": [(2, CrashEvent("p3"))],
                "p1": [(5, gsus("p1", {"p3", "p2"}, 1))],
                "p2": [],
            }
        )
        assert generalized_strong_accuracy(r)

    def test_accuracy_violated_by_overcount(self):
        r = build(
            {
                "p3": [(2, CrashEvent("p3"))],
                "p1": [(5, gsus("p1", {"p3", "p2"}, 2))],
                "p2": [],
            }
        )
        assert not generalized_strong_accuracy(r)

    def test_t_useful_completeness(self):
        # n=3, t=1, F={p3}: (S={p3}, k=1) satisfies (a)-(c).
        r = build(
            {
                "p3": [(2, CrashEvent("p3"))],
                "p1": [(5, gsus("p1", {"p3"}, 1))],
                "p2": [(6, gsus("p2", {"p3"}, 1))],
            }
        )
        assert generalized_impermanent_strong_completeness(r, 1)
        assert is_t_useful(r, 1)

    def test_useless_report_fails_completeness(self):
        # (S, 0) with |S| = 2 and t = 1 fails n - |S| > t - k (1 > 1).
        r = build(
            {
                "p3": [(2, CrashEvent("p3"))],
                "p1": [(5, gsus("p1", {"p3", "p2"}, 0))],
                "p2": [(6, gsus("p2", {"p3", "p2"}, 0))],
            }
        )
        assert not generalized_impermanent_strong_completeness(r, 1)

    def test_subset_must_cover_faulty(self):
        # (S, k) useful only if F(r) is inside S.
        r = build(
            {
                "p3": [(2, CrashEvent("p3"))],
                "p1": [(5, gsus("p1", {"p2"}, 0))],
                "p2": [(6, gsus("p2", {"p2"}, 0))],
            }
        )
        assert not generalized_impermanent_strong_completeness(r, 1)


class TestAtdAccuracy:
    def test_rotation_is_allowed(self):
        # p1 suspected in the first window, p2 in the second -- but at
        # every instant one of them is unsuspected.
        r = build(
            {
                "p1": [(14, sus("p1", {"p3"}))],
                "p2": [],
                "p3": [(2, sus("p3", {"p1"})), (10, sus("p3", {"p2"}))],
            }
        )
        assert atd_accuracy(r)
        assert not weak_accuracy(r)  # every correct process suspected sometime

    def test_simultaneous_total_suspicion_fails(self):
        r = build(
            {
                "p1": [(5, sus("p1", {"p2", "p3"}))],
                "p2": [(6, sus("p2", {"p1"}))],
                "p3": [],
            }
        )
        assert not atd_accuracy(r)

    def test_crashed_observer_reports_expire(self):
        # p3 suspects everyone and then crashes; from its crash on its
        # report no longer counts.
        r = build(
            {
                "p1": [],
                "p2": [],
                "p3": [(2, sus("p3", {"p1", "p2"})), (4, CrashEvent("p3"))],
            }
        )
        assert atd_accuracy(r) is not None
        verdict = atd_accuracy(r)
        # Between t=2 and t=4 all correct are suspected => violated.
        assert not verdict

    def test_vacuous_without_correct(self):
        r = build(
            {
                "p1": [(1, sus("p1", {"p2", "p3"})), (2, CrashEvent("p1"))],
                "p2": [(3, CrashEvent("p2"))],
                "p3": [(3, CrashEvent("p3"))],
            }
        )
        assert atd_accuracy(r)


class TestSystemSatisfies:
    def test_all_runs_must_pass(self):
        good = build(
            {
                "p3": [(2, CrashEvent("p3"))],
                "p1": [(5, sus("p1", {"p3"}))],
                "p2": [],
            }
        )
        bad = build({"p1": [(5, sus("p1", {"p2"}))], "p2": [], "p3": []})
        assert system_satisfies(System([good]), strong_accuracy)
        verdict = system_satisfies(System([good, bad]), strong_accuracy)
        assert not verdict
        assert "run 1" in verdict.witness


class TestPropertyVerdict:
    def test_truthiness(self):
        assert PropertyVerdict.ok()
        assert not PropertyVerdict.fail("reason")

    def test_witness_carried(self):
        assert PropertyVerdict.fail("because").witness == "because"
