"""Unit tests for systems and the indistinguishability / knowledge primitives."""

import pytest

from repro.model.context import ChannelSemantics, Context, make_process_ids
from repro.model.events import CrashEvent, Message, ReceiveEvent, SendEvent
from repro.model.run import Point, Run
from repro.model.system import System

PROCS = ("p1", "p2", "p3")


def run_with(timelines, duration=6):
    return Run(PROCS, timelines, duration)


def crash_run():
    """p3 crashes at time 2; p1 hears about it via a message at time 4."""
    msg = Message("p3-down")
    return run_with(
        {
            "p1": [(4, ReceiveEvent("p1", "p2", msg))],
            "p2": [(3, SendEvent("p2", "p1", msg))],
            "p3": [(2, CrashEvent("p3"))],
        }
    )


def no_crash_run():
    """Same observable history for p1 up to time 3, but p3 never crashes."""
    msg = Message("p3-down")
    return run_with(
        {
            "p1": [],
            "p2": [(3, SendEvent("p2", "p1", msg))],
            "p3": [],
        }
    )


class TestSystemBasics:
    def test_empty_system_rejected(self):
        with pytest.raises(ValueError):
            System([])

    def test_mismatched_process_sets_rejected(self):
        r1 = Run(("p1",), {"p1": []}, 1)
        r2 = Run(("p1", "p2"), {"p1": [], "p2": []}, 1)
        with pytest.raises(ValueError):
            System([r1, r2])

    def test_len_iter_contains(self):
        r = crash_run()
        s = System([r])
        assert len(s) == 1
        assert r in s
        assert list(s) == [r]

    def test_restrict(self):
        s = System([crash_run(), no_crash_run()])
        sub = s.restrict(lambda r: not r.faulty())
        assert len(sub) == 1

    def test_union_dedupes(self):
        a = System([crash_run()])
        b = System([crash_run(), no_crash_run()])
        assert len(a.union(b)) == 2


class TestIndistinguishability:
    def test_same_history_points_grouped(self):
        r1, r2 = crash_run(), no_crash_run()
        s = System([r1, r2])
        # Before time 4, p1 has the empty history in both runs.
        pts = s.indistinguishable_points("p1", Point(r1, 0))
        runs_seen = {pt.run for pt in pts}
        assert runs_seen == {r1, r2}

    def test_distinguishing_event_splits_points(self):
        r1, r2 = crash_run(), no_crash_run()
        s = System([r1, r2])
        # At time 4 p1 has received the message only in r1.
        pts = s.indistinguishable_points("p1", Point(r1, 4))
        assert {pt.run for pt in pts} == {r1}


class TestKnowledgePrimitives:
    def test_no_knowledge_of_crash_before_evidence(self):
        r1, r2 = crash_run(), no_crash_run()
        s = System([r1, r2])
        # Before receiving the message, p1 considers the no-crash run
        # possible, so it does not know p3 crashed.
        assert not s.knows_crashed("p1", Point(r1, 3), "p3")

    def test_knowledge_without_alternative(self):
        # In a system where every p1-indistinguishable point has p3
        # crashed, p1 knows it (here: the singleton system after the
        # distinguishing receive).
        r1, r2 = crash_run(), no_crash_run()
        s = System([r1, r2])
        assert s.knows_crashed("p1", Point(r1, 4), "p3")

    def test_knowledge_is_veridical(self):
        # K_p(crash(q)) at (r, m) implies crash(q) at (r, m), because
        # (r, m) is itself p-indistinguishable from itself.
        r1, r2 = crash_run(), no_crash_run()
        s = System([r1, r2])
        for r in (r1, r2):
            for m in range(r.duration + 1):
                for q in PROCS:
                    if s.knows_crashed("p1", Point(r, m), q):
                        assert r.crashed_by(q, m)

    def test_known_crashed_set(self):
        r1, r2 = crash_run(), no_crash_run()
        s = System([r1, r2])
        assert s.known_crashed_set("p1", Point(r1, 3)) == frozenset()
        assert s.known_crashed_set("p1", Point(r1, 4)) == frozenset({"p3"})

    def test_known_crash_count_lower_bound(self):
        r1, r2 = crash_run(), no_crash_run()
        s = System([r1, r2])
        subset = frozenset({"p2", "p3"})
        # Before evidence, the minimum over indistinguishable points is 0.
        assert s.known_crash_count("p1", Point(r1, 3), subset) == 0
        # After the message, every indistinguishable point has p3 down.
        assert s.known_crash_count("p1", Point(r1, 4), subset) == 1

    def test_generic_knows(self):
        r1 = crash_run()
        s = System([r1])
        assert s.knows("p2", Point(r1, 5), lambda pt: True)
        assert not s.knows("p2", Point(r1, 5), lambda pt: False)


class TestContext:
    def test_make_process_ids(self):
        assert make_process_ids(3) == ("p1", "p2", "p3")

    def test_make_process_ids_requires_positive(self):
        with pytest.raises(ValueError):
            make_process_ids(0)

    def test_of_constructor(self):
        ctx = Context.of(5, failure_bound=2)
        assert ctx.n == 5
        assert ctx.t == 2
        assert not ctx.unbounded_failures

    def test_unbounded_context(self):
        ctx = Context.of(4)
        assert ctx.t == 4
        assert ctx.unbounded_failures

    def test_majority_correct(self):
        assert Context.of(5, failure_bound=2).majority_correct()
        assert not Context.of(4, failure_bound=2).majority_correct()

    def test_bad_failure_bound_rejected(self):
        with pytest.raises(ValueError):
            Context.of(3, failure_bound=7)

    def test_duplicate_processes_rejected(self):
        with pytest.raises(ValueError):
            Context(processes=("p1", "p1"))

    def test_channel_semantics_values(self):
        assert ChannelSemantics.RELIABLE.value == "reliable"
        assert ChannelSemantics.FAIR_LOSSY.value == "fair_lossy"
