"""Known-bad: a ``<locals>``-nested function handed to a spec factory.
Pickle resolves callables by qualified module path and cannot reach a
function defined inside another function."""


def module_metric(run) -> int:
    return run.rounds


def build():
    def local_metric(run) -> int:
        return run.rounds

    good = ExploreSpec(module_metric)  # noqa: F821  (known-good)
    bad = ExploreSpec(local_metric)  # expect: POOL004
    return good, bad
