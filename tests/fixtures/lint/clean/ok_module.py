# repro: lint-module[repro.sim.fixture_clean]
"""Clean fixture: deterministic, picklable, invariant-respecting code."""

import random


class Widget:
    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self._draws: list[int] = []

    def draw(self, sides: int) -> int:
        value = self.rng.randrange(sides)
        self._draws.append(value)
        return value

    def trace(self) -> tuple[int, ...]:
        return tuple(self._draws)
