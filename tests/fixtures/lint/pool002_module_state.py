# repro: lint-module[repro.runtime.fixture_pool002]
"""Known-bad fixture: POOL002 module-level mutable state."""

from collections import deque

_results = []  # expect: POOL002
_registry = {}  # expect: POOL002
_pending = deque()  # expect: POOL002
_seen: set = set()  # expect: POOL002

# constants and dunders are not flagged
_LIMITS = {}
__all__ = ["record"]
_MARKER = None


def record(value):
    global _results  # expect: POOL002
    _results = _results + [value]
