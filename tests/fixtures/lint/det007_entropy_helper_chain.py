# repro: lint-module[repro.core.fixture_det007]
"""Known-bad: inside a determinism package, the direct entropy call is
DET001 territory; the *caller one hop up* is DET007 territory -- the
taint arrives through the helper.  Both fire, at different lines."""

import random


def _draw() -> float:
    return random.random()  # expect: DET001


def _jittered(base: float) -> float:
    return base + _draw()  # expect: DET007


def schedule_delay(base: float) -> float:
    return _jittered(base)  # expect: DET007
