# repro: lint-module[repro.sim.fixture_suppressed]
"""Clean fixture: real violations waived by valid suppressions.

Every would-be finding below carries a ``lint-ok`` comment, so linting
this file must produce zero findings.
"""

import random
import time


def waived(members: set[str]):
    a = random.random()  # repro: lint-ok[DET001]
    b = time.time()  # repro: lint-ok[DET002]
    # a standalone suppression comment covers the next line
    # repro: lint-ok[DET004, DET005]
    keys = [id(m) for m in members]
    return a, b, keys
