# repro: lint-module[repro.sim.fixture_det002]
"""Known-bad fixture: DET002 wall-clock reads in deterministic code."""

import time
import datetime
from datetime import datetime as dt
from datetime import date


def stamp():
    a = time.time()  # expect: DET002
    b = time.time_ns()  # expect: DET002
    c = datetime.datetime.now()  # expect: DET002
    d = dt.utcnow()  # expect: DET002
    e = date.today()  # expect: DET002
    return a, b, c, d, e


def fine():
    # monotonic/perf_counter are deadline plumbing, never run content
    start = time.perf_counter()
    time.sleep(0)
    return time.monotonic() - start
