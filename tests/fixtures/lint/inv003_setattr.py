# repro: lint-module[repro.runtime.fixture_inv003]
"""Known-bad fixture: INV003 object.__setattr__ outside construction."""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Frozen:
    value: int
    cache: dict = field(default_factory=dict)

    def __post_init__(self):
        # construction-time writes on frozen dataclasses are the idiom
        object.__setattr__(self, "value", abs(self.value))

    def poke(self, v):
        object.__setattr__(self, "value", v)  # expect: INV003
        object.__delattr__(self, "cache")  # expect: INV003


def module_level_poke(obj):
    object.__setattr__(obj, "anything", 1)  # expect: INV003
