# repro: lint-module[repro.serve.fixture_asy004]
"""Known-bad: a shared counter is read into a local, the coroutine
suspends at an await, then the stale local is written back -- the
lost-update race.  The locked variant below is the known-good shape:
the same read-modify-write under ``async with lock`` is serialized."""

import asyncio


async def bump(state, key: str) -> None:
    cur = state.counters[key]
    await asyncio.sleep(0)
    state.counters[key] = cur + 1  # expect: ASY004


async def bump_locked(state, key: str) -> None:
    # Known-good: the lock spans the whole read-modify-write.
    async with state.lock:
        cur = state.counters[key]
        await asyncio.sleep(0)
        state.counters[key] = cur + 1


async def rebuild(state, key: str) -> None:
    # Known-good: the write does not depend on the pre-await read.
    await asyncio.sleep(0)
    state.counters[key] = 0
