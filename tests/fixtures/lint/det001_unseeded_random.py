# repro: lint-module[repro.sim.fixture_det001]
"""Known-bad fixture: DET001 unseeded/global randomness."""

import random
import random as rnd
from random import shuffle
from random import randint as roll


def pick(items):
    random.shuffle(items)  # expect: DET001
    x = random.random()  # expect: DET001
    y = rnd.randrange(10)  # expect: DET001
    shuffle(items)  # expect: DET001
    z = roll(1, 6)  # expect: DET001
    rng = random.Random()  # expect: DET001
    return x, y, z, rng


def fine(seed):
    rng = random.Random(seed)  # seeded: not flagged
    return rng.random()  # method on an instance: not flagged
