# repro: lint-module[repro.explore.fixture_inv002]
"""Known-bad fixture: INV002 writes to kernel tables outside the kernel."""


def poke(system, checker, interned):
    system._run_pos[123] = 0  # expect: INV002
    system._classes = {}  # expect: INV002
    checker._foreign_ids.clear()  # mutating call, not a write target: not flagged
    checker._table[interned] = True  # expect: INV002
    system._interner = None  # expect: INV002


def fine(system):
    # reading kernel state is allowed; only writes desynchronise it
    return len(system._run_pos)
