# repro: lint-module[repro.knowledge.fixture_det005]
"""Known-bad fixture: DET005 identity-keyed state."""


class Cache:
    def __init__(self):
        self._by_obj = {}

    def remember(self, run, value):
        self._by_obj[id(run)] = value  # expect: DET005

    def lookup(self, run):
        return self._by_obj.get(id(run))  # expect: DET005


def dedupe(runs):
    seen = {id(r) for r in runs}  # expect: DET005
    return len(seen)
