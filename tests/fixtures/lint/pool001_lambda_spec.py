# repro: lint-module[repro.experiments.fixture_pool001]
"""Known-bad fixture: POOL001 lambdas inside picklable specs."""


def build_specs(processes, workload):
    spec = RunSpec(  # noqa: F821 - fixture, never imported
        processes=processes,
        protocol=lambda pid, env: object(),  # expect: POOL001
        workload=workload,
        seed=1,
    )
    ens = EnsembleSpec(  # noqa: F821
        runs=(spec,),
        judge=lambda report: True,  # expect: POOL001
    )
    proto = UniformProtocol(  # noqa: F821
        process_cls=object,
        kwargs={"tiebreak": lambda a, b: a},  # expect: POOL001
    )
    return spec, ens, proto


def fine(processes, workload, module_level_factory):
    return RunSpec(  # noqa: F821
        processes=processes,
        protocol=module_level_factory,
        workload=workload,
        seed=1,
    )
