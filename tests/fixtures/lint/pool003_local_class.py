# repro: lint-module[repro.runtime.fixture_pool003]
"""Known-bad fixture: POOL003 classes defined inside functions."""


def make_protocol():
    class LocalProtocol:  # expect: POOL003
        def step(self):
            return 0

    return LocalProtocol()


class ModuleLevel:
    # a nested class in a *class* body is picklable by qualname: not flagged
    class Inner:
        pass

    def method(self):
        class Hidden:  # expect: POOL003
            pass

        return Hidden
