"""Known-bad: a Protocol implementation calls a module-level helper
that reads the wall clock.  The helper itself is outside the
determinism scope (DET002 stays quiet on it), but the taint flows into
the protocol step through the call -- DET007's job."""

import time


def _stamp() -> float:
    return time.time()


def _label() -> str:
    return f"run-{_stamp()}"


class TimestampingProcess(ProtocolProcess):  # noqa: F821
    def step(self, tick: int) -> str:
        return _label()  # expect: DET007

    def clean_step(self, tick: int) -> int:
        # Known-good: pure arithmetic on the simulated tick.
        return tick + 1
