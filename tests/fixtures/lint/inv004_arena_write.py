# repro: lint-module[repro.explore.fixture_inv004]
"""Known-bad fixture: INV004 writes to arena buffers outside repro.columnar."""


def poke(arena, kernel, system):
    arena.tl_times[0] = 99  # expect: INV004
    arena.run_durations = None  # expect: INV004
    kernel.class_sizes[3] += 1  # expect: INV004
    system.kernel.point_class_rows[0][5] = 2  # expect: INV004
    del arena.tl_events  # expect: INV004


def fine(arena, kernel):
    # reading columns is the whole point; only stores fork the views
    total = int(arena.tl_times[0]) + len(kernel.class_sizes)
    local = list(arena.run_durations)
    local[0] = 99  # a copy, not the buffer
    return total
