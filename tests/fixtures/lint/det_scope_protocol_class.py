"""Scope fixture: determinism rules reach Protocol classes anywhere.

No ``lint-module`` override here, so this file is outside every
deterministic package — yet the class body below implements the
Protocol interface, so DET rules apply inside it (and only inside it).
"""

import random


def driver_helper():
    # outside the protocol class and outside DET packages: not flagged
    return random.random()


class FlakyProcess(ProtocolProcess):  # noqa: F821 - fixture, never imported
    def on_tick(self, tick):
        return random.random()  # expect: DET001


class FlakySubclass(FlakyProcess):
    def on_tick(self, tick):
        coin = random.randint(0, 1)  # expect: DET001
        return coin
