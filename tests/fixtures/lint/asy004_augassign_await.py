# repro: lint-module[repro.serve.fixture_asy004_aug]
"""Known-bad: an augmented assignment to shared state whose right-hand
side awaits -- the read happens before the suspension, the write after
it, and every update the loop ran in between is overwritten.  The
pending-counter idiom below it is the known-good shape: each increment
and decrement is atomic between awaits."""

import asyncio


class MetricsServer:
    async def _fetch_delta(self) -> int:
        await asyncio.sleep(0)
        return 1

    async def serve_one(self) -> None:
        self.metrics["served"] += await self._fetch_delta()  # expect: ASY004

    async def admitted(self) -> None:
        # Known-good: no await inside either read-modify-write.
        self._pending += 1
        try:
            await asyncio.sleep(0)
        finally:
            self._pending -= 1
