# repro: lint-module[repro.serve.fixture_asy003]
"""Known-bad: a serve coroutine reaches time.sleep through two sync
helpers.  ASY001 cannot see it (the sleep is not lexically inside the
coroutine); ASY003 follows the call chain.  The executor-shipped
variant below is the known-good cut: the same helper off-loaded with
run_in_executor never blocks the loop."""

import asyncio
import time


def _flush_disk() -> None:
    time.sleep(0.1)


def _persist() -> None:
    _flush_disk()


async def handler() -> None:
    _persist()  # expect: ASY003
    await asyncio.sleep(0)


async def offloaded(loop: asyncio.AbstractEventLoop) -> None:
    # Known-good: the thunk runs on a worker thread, not the loop.
    await loop.run_in_executor(None, _persist)
