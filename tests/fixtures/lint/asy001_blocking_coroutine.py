# repro: lint-module[repro.serve.fixture_asy001]
"""Known-bad fixture: ASY001 blocking calls inside serve coroutines."""

import asyncio
import subprocess
import time
from subprocess import check_output as co
from pathlib import Path


async def handle_request(path: Path) -> bytes:
    time.sleep(0.1)  # expect: ASY001
    subprocess.run(["true"])  # expect: ASY001
    co(["date"])  # expect: ASY001
    with open("config.json") as fh:  # expect: ASY001
        fh.read()
    return path.read_bytes()  # expect: ASY001


async def log_line(path: Path, line: str) -> None:
    path.write_text(line)  # expect: ASY001


async def fine(path: Path) -> str:
    # asyncio-native waiting and executor off-load are the sanctioned
    # patterns: the thunk blocks a worker thread, never the loop.
    await asyncio.sleep(0.1)
    loop = asyncio.get_running_loop()
    text = await loop.run_in_executor(None, path.read_text)
    text += await loop.run_in_executor(None, lambda: Path("x").read_text())
    return text


def sync_helper(path: Path) -> str:
    # Plain functions are driver-side: blocking is their job.
    time.sleep(0)
    return path.read_text()
