# repro: lint-module[repro.core.fixture_det003]
"""Known-bad fixture: DET003 ambient entropy sources."""

import os
import secrets
import uuid
import random
from uuid import uuid4


def fresh_ids():
    a = os.urandom(16)  # expect: DET003
    b = uuid.uuid4()  # expect: DET003
    c = uuid4()  # expect: DET003
    d = uuid.uuid1()  # expect: DET003
    e = secrets.token_hex(8)  # expect: DET003
    f = random.SystemRandom()  # expect: DET003
    return a, b, c, d, e, f


def fine():
    return os.path.join("a", "b"), uuid.UUID(int=0)
