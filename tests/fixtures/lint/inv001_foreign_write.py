# repro: lint-module[repro.model.fixture_inv001]
"""Known-bad fixture: INV001 post-construction private writes."""


def tamper(run, histories):
    run._events = ()  # expect: INV001
    run._meta["patched"] = True  # expect: INV001
    histories[0]._len += 1  # expect: INV001
    del run._digest  # expect: INV001


def construct():
    # filling slots on a __new__-allocated object is construction
    node = History.__new__(History)  # noqa: F821 - fixture, never imported
    node._parent = None
    node._len = 0
    return node


class Holder:
    def __init__(self, value):
        # writes through self are ordinary encapsulated state
        self._value = value

    def reset(self):
        self._value = None
