# repro: lint-module[repro.model.fixture_det004]
"""Known-bad fixture: DET004 iteration over bare sets."""


def trace_members(members: set[str], extra):
    out = []
    for m in members:  # expect: DET004
        out.append(m)
    for x in {1, 2, 3}:  # expect: DET004
        out.append(x)
    pending = set(extra)
    names = [n for n in pending]  # expect: DET004
    order = list(frozenset(extra))  # expect: DET004
    joined = ",".join({str(x) for x in extra})  # expect: DET004
    return out, names, order, joined


def fine(members: set[str], extra):
    # order-insensitive consumers and sorted() wrappers are exempt
    for m in sorted(members):
        pass
    total = sum(1 for m in members)
    biggest = max(members)
    k = len(set(extra))
    return total, biggest, k, any(m for m in members)
