"""Known-bad: spec arguments produced by helpers that (transitively)
return unpicklable objects.  The PicklingError only surfaces when the
pool dispatches the spec -- far from these construction sites."""

import threading


def fresh_lock() -> threading.Lock:
    return threading.Lock()


def wrapped_lock() -> threading.Lock:
    return fresh_lock()


def build_specs():
    plain = RunSpec(seed=7)  # noqa: F821  (known-good: plain data)
    direct = RunSpec(fresh_lock())  # expect: POOL004
    transitive = EnsembleSpec(wrapped_lock())  # expect: POOL004
    return plain, direct, transitive
