# repro: lint-module[repro.model.fixture_lnt001]
"""Known-bad fixture: LNT001 suppression hygiene."""

x = 1  # repro: lint-ok (expect: LNT001)
y = 2  # repro: lint-ok[NOPE123] (expect: LNT001)
z = 3  # repro: lint-ok[] (expect: LNT001)
