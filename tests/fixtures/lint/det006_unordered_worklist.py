# repro: lint-module[repro.explore.fixture_det006]
"""Known-bad fixture: DET006 worklist containers of unproven order.

The explorer's shard merge and dedup layers require frontier-shaped
containers to iterate in one deterministic order; this fixture binds
them to opaque and set-flavoured values and iterates.
"""

from collections import deque


def load_frontier():
    return [(), (0,)]


def drain(entries):
    frontier = load_frontier()  # opaque constructor: order unproven
    for item in frontier:  # expect: DET006
        print(item)
    orbit_set = {e for e in entries}
    names = [x for x in orbit_set]  # expect: DET004 expect: DET006
    worklist = entries  # bare rebinding: order unproven
    return list(worklist), names  # expect: DET006


def fine(entries):
    # provably ordered bindings and order-insensitive consumers pass
    frontier_chunks = deque(entries)
    while frontier_chunks:
        frontier_chunks.popleft()
    sleep_set: list[int] = [1, 2, 3]
    for s in sleep_set:
        del s
    orbit = sorted(entries)
    biggest = max(orbit)
    return biggest, sum(1 for x in orbit)
