# repro: lint-module[repro.serve.fixture_asy002]
"""Known-bad fixture: ASY002 fire-and-forget tasks in serve code."""

import asyncio
from asyncio import ensure_future


async def _watch() -> None:
    await asyncio.sleep(0)


async def spawn_and_lose() -> None:
    asyncio.create_task(_watch())  # expect: ASY002
    ensure_future(_watch())  # expect: ASY002
    _ = asyncio.create_task(_watch())  # expect: ASY002
    loop = asyncio.get_running_loop()
    loop.create_task(_watch())  # expect: ASY002


async def retained() -> None:
    # Sanctioned: handles retained, awaited, or tracked with a callback.
    task = asyncio.create_task(_watch())
    await task
    tasks: set[asyncio.Task[None]] = set()
    tracked = asyncio.create_task(_watch())
    tasks.add(tracked)
    tracked.add_done_callback(tasks.discard)
    await asyncio.gather(*tasks)


async def task_group_is_fine() -> None:
    # A TaskGroup retains its children itself: discarding the handle
    # is safe, and ASY002 deliberately exempts it.
    async with asyncio.TaskGroup() as tg:
        tg.create_task(_watch())


async def acknowledged() -> None:
    # Suppression hygiene: a deliberate fire-and-forget is an explicit,
    # greppable opt-out -- never the default.
    asyncio.create_task(_watch())  # repro: lint-ok[ASY002]
