# repro: lint-module[repro.serve.fixture_asy003_methods]
"""Known-bad: the blocking chain runs through instance methods --
``self._save()`` -> ``self._write()`` -> ``Path.write_text``.  ASY003
resolves ``self.m()`` through the enclosing class."""

import asyncio
from pathlib import Path


class SnapshotWriter:
    def __init__(self, path: Path) -> None:
        self.path = path

    def _write(self, payload: str) -> None:
        self.path.write_text(payload)

    def _save(self, payload: str) -> None:
        self._write(payload)

    async def on_request(self, payload: str) -> None:
        self._save(payload)  # expect: ASY003
        await asyncio.sleep(0)
