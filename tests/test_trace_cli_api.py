"""Tests for the trace renderer, the CLI entry points, and the public API."""

import subprocess
import sys

from repro.core.protocols import StrongFDUDCProcess
from repro.detectors.standard import PerfectOracle
from repro.harness.trace import describe_event, render_run, summarize_run
from repro.model.context import make_process_ids
from repro.model.events import (
    CrashEvent,
    DoEvent,
    GeneralizedSuspicion,
    InitEvent,
    Message,
    ReceiveEvent,
    SendEvent,
    StandardSuspicion,
    SuspectEvent,
)
from repro.sim.executor import Executor
from repro.sim.failures import CrashPlan
from repro.sim.process import uniform_protocol
from repro.workloads.generators import single_action

PROCS = make_process_ids(3)


def sample_run():
    return Executor(
        PROCS,
        uniform_protocol(StrongFDUDCProcess),
        crash_plan=CrashPlan.of({"p3": 6}),
        workload=single_action("p1", tick=1),
        detector=PerfectOracle(),
        seed=0,
    ).run()


class TestDescribeEvent:
    def test_each_event_kind(self):
        assert describe_event(SendEvent("p1", "p2", Message("alpha"))) == "send(p2, alpha)"
        assert describe_event(ReceiveEvent("p2", "p1", Message("ack"))) == "recv(p1, ack)"
        assert describe_event(InitEvent("p1", "a")) == "init('a')"
        assert describe_event(DoEvent("p1", "a")) == "do('a')"
        assert describe_event(CrashEvent("p1")) == "CRASH"

    def test_suspicions(self):
        std = SuspectEvent("p1", StandardSuspicion(frozenset({"p2", "p3"})))
        assert describe_event(std) == "suspect{p2,p3}"
        derived = SuspectEvent(
            "p1", StandardSuspicion(frozenset({"p2"})), derived=True
        )
        assert describe_event(derived) == "suspect'{p2}"
        gen = SuspectEvent("p1", GeneralizedSuspicion(frozenset({"p2"}), 1))
        assert describe_event(gen) == "suspect({p2}, 1)"


class TestRenderRun:
    def test_contains_all_processes(self):
        text = render_run(sample_run())
        for p in PROCS:
            assert p in text

    def test_limit_truncates(self):
        text = render_run(sample_run(), limit=3)
        assert "more ticks" in text

    def test_exclude_sends(self):
        text = render_run(sample_run(), include_sends=False)
        assert "send(" not in text
        assert "recv(" in text

    def test_crash_rendered(self):
        assert "CRASH" in render_run(sample_run())


class TestSummarize:
    def test_mentions_counts_and_faulty(self):
        text = summarize_run(sample_run())
        assert "3 processes" in text
        assert "faulty: p3" in text
        assert "crash=1" in text


class TestCli:
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True,
            text=True,
            timeout=300,
        )

    def test_demo(self):
        proc = self.run_cli("demo")
        assert proc.returncode == 0
        assert "UDC: holds" in proc.stdout

    def test_single_experiment(self):
        proc = self.run_cli("experiments", "A14")
        assert proc.returncode == 0
        assert "[A14]" in proc.stdout and "PASS" in proc.stdout

    def test_table1(self):
        proc = self.run_cli("table1")
        assert proc.returncode == 0
        assert "shape matches paper: YES" in proc.stdout

    def test_unknown_command_shows_help(self):
        proc = self.run_cli("bogus")
        assert proc.returncode == 2
        assert "Commands" in proc.stdout


class TestPublicApi:
    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        import repro

        assert repro.__version__

    def test_quickstart_docstring_flow(self):
        # The flow advertised in repro.__doc__ must actually work.
        from repro import (
            CrashPlan,
            Executor,
            StrongFDUDCProcess,
            StrongOracle,
            make_process_ids,
            single_action,
            udc_holds,
            uniform_protocol,
        )

        processes = make_process_ids(5)
        run = Executor(
            processes,
            uniform_protocol(StrongFDUDCProcess),
            crash_plan=CrashPlan.of({"p3": 8}),
            workload=single_action("p1", tick=1),
            detector=StrongOracle(),
            seed=42,
        ).run()
        assert udc_holds(run)
