"""Tests for repro.explore: bounded exhaustive enumeration.

The load-bearing check is `TestReductionSoundness`: with partial-order
reduction and fingerprint pruning enabled, the explorer must produce the
*same run set* as the reductions-off exhaustive baseline, and the
epistemic kernel must give bit-identical answers (Knows, knows_crashed,
common-knowledge points) over the two systems.  That is what licenses
running the reductions by default.
"""

import warnings

import pytest

from repro import (
    ExploreSpec,
    IncompleteSystemWarning,
    UniformityMonitor,
    explore,
    make_process_ids,
    replay_exploration,
    uniform_protocol,
    validate_run,
)
from repro.core.protocols import NUDCProcess, ReliableUDCProcess
from repro.explore import PredicateMonitor
from repro.detectors.properties import PropertyVerdict
from repro.knowledge import Crashed, GroupChecker, ModelChecker
from repro.model.run import Point
from repro.runtime import EnsembleSpec, RunCache, run_ensemble
from repro.sim.failures import CrashPlan
from repro.workloads.generators import single_action

PROCS = make_process_ids(3)


def nudc_spec(**overrides):
    base = dict(
        processes=PROCS,
        protocol=uniform_protocol(NUDCProcess),
        horizon=4,
        max_failures=1,
        crash_ticks=(1,),
        workload=single_action("p1", tick=1),
    )
    base.update(overrides)
    return ExploreSpec(**base)


LOSSY = dict(
    horizon=6,
    crash_ticks=(1, 3, 5),
    lossy=True,
    max_consecutive_drops=1,
)


class TestExploreSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            nudc_spec(horizon=0)
        with pytest.raises(ValueError):
            nudc_spec(max_failures=4)
        with pytest.raises(ValueError):
            nudc_spec(crash_ticks=(0,))
        with pytest.raises(ValueError):
            nudc_spec(max_consecutive_drops=0)
        with pytest.raises(ValueError):
            nudc_spec(strategy="random")
        with pytest.raises(ValueError):
            nudc_spec(processes=())

    def test_crash_plans_enumerate_bounded_adversary(self):
        plans = nudc_spec(crash_ticks=(1, 3)).crash_plans()
        # the empty plan + one per (process, tick) pair at t=1
        assert plans[0] == CrashPlan.none()
        assert len(plans) == 1 + 3 * 2
        assert len(set(plans)) == len(plans)

    def test_crash_plans_cover_subsets_at_t2(self):
        plans = nudc_spec(max_failures=2, crash_ticks=(2,)).crash_plans()
        sizes = sorted(len(p.faulty) for p in plans)
        assert sizes == [0, 1, 1, 1, 2, 2, 2]

    def test_digest_tracks_content(self):
        a, b = nudc_spec(), nudc_spec()
        assert a.digest() == b.digest()
        assert a.digest() != a.with_(horizon=5).digest()
        assert a.digest() != a.with_(reduction="none").digest()


class TestExploration:
    def test_exhaustive_and_complete(self):
        report = explore(nudc_spec(), cache=None)
        assert report.stats.exhaustive
        assert report.complete
        assert len(report) == report.stats.runs_unique > 0
        # every run passes the model axioms at the explorer's R5 bound
        for run in report.runs:
            validate_run(run)
            assert run.meta["explored"] is True

    def test_quiescence_flags_are_exact(self):
        report = explore(nudc_spec(), cache=None)
        by_plan = {}
        for run in report.runs:
            by_plan.setdefault(run.meta["crash_plan"], []).append(run)
        # p1 crashes at tick 1, before its own initiation: nothing ever
        # happens, and that empty run is a fixpoint.
        silenced = by_plan[CrashPlan.of({"p1": 1})]
        assert any(r.meta["quiescent"] for r in silenced)
        # the crash-free NUDC exchange is still mid-handshake at T=4
        assert not any(
            r.meta["quiescent"] for r in by_plan[CrashPlan.none()]
        )

    def test_bfs_and_dfs_agree_on_run_set(self):
        dfs = explore(nudc_spec(), cache=None)
        bfs = explore(nudc_spec(strategy="bfs"), cache=None)
        assert set(dfs.runs) == set(bfs.runs)

    def test_truncation_marks_incomplete(self):
        report = explore(nudc_spec(**LOSSY, max_executions=5), cache=None)
        assert report.stats.truncated
        assert not report.complete

    def test_replay_reproduces_enumerated_runs(self):
        spec = nudc_spec(**LOSSY)
        report = explore(spec, cache=None)
        for run in report.runs[:10]:
            replayed = replay_exploration(
                spec, run.meta["crash_plan"], run.meta["trace"]
            )
            assert replayed == run


class TestReductionSoundness:
    """DPOR must not change the run set or the knowledge."""

    @pytest.fixture(scope="class")
    def reports(self):
        spec = nudc_spec(**LOSSY)
        reduced = explore(spec, cache=None)
        baseline = explore(spec.with_(reduction="none"), cache=None)
        return reduced, baseline

    def test_run_sets_identical(self, reports):
        reduced, baseline = reports
        assert set(reduced.runs) == set(baseline.runs)
        assert reduced.stats.exhaustive and baseline.stats.exhaustive

    def test_knowledge_bit_identical(self, reports):
        reduced, baseline = reports
        fast, ref = reduced.system(), baseline.system()
        other = {run: run for run in ref.runs}
        for run in fast.runs:
            for time in range(run.duration + 1):
                pt, pt_ref = Point(run, time), Point(other[run], time)
                for p in PROCS:
                    for q in PROCS:
                        assert fast.knows_crashed(p, pt, q) == ref.knows_crashed(
                            p, pt_ref, q
                        ), (run.meta["trace"], time, p, q)
                    assert fast.known_crashed_set(p, pt) == ref.known_crashed_set(
                        p, pt_ref
                    )

    def test_common_knowledge_bit_identical(self, reports):
        reduced, baseline = reports
        group = tuple(PROCS)
        for phi in (Crashed("p1"), Crashed("p2")):
            fast = GroupChecker(ModelChecker(reduced.system()))
            ref = GroupChecker(ModelChecker(baseline.system()))
            assert fast.common_knowledge_points(group, phi) == (
                ref.common_knowledge_points(group, phi)
            )


class TestMonitors:
    def test_udc_violations_found_with_coordinates(self):
        spec = nudc_spec(**LOSSY)
        monitor = UniformityMonitor()
        report = explore(spec, monitors=[monitor], cache=None)
        assert report.violations
        for violation in report.violations:
            assert violation.monitor == "udc"
            replayed = replay_exploration(
                spec, violation.crash_plan, violation.trace
            )
            assert replayed == violation.run
            assert not monitor.check(replayed)

    def test_quiescent_variant_wins_dedup(self):
        # A run where both copies are *dropped* has the same timelines as
        # one where both are *still in flight* at T; only the former is a
        # fixpoint, and the liveness monitor must see it.
        spec = nudc_spec(**LOSSY)
        report = explore(spec, monitors=[UniformityMonitor()], cache=None)
        late = [v for v in report.violations if v.crash_plan.as_dict() == {"p1": 5}]
        assert late, "drop-based violation must survive run deduplication"
        assert all(v.run.meta["quiescent"] for v in late)

    def test_nudc_protocol_satisfies_nudc(self):
        report = explore(
            nudc_spec(**LOSSY),
            monitors=[UniformityMonitor(uniform=False)],
            cache=None,
        )
        assert not report.violations

    def test_reliable_protocol_satisfies_udc_without_crashes(self):
        report = explore(
            nudc_spec(
                protocol=uniform_protocol(ReliableUDCProcess),
                max_failures=0,
                horizon=6,
            ),
            monitors=[UniformityMonitor()],
            cache=None,
        )
        assert not report.violations

    def test_stop_on_violation_short_circuits(self):
        spec = nudc_spec(**LOSSY)
        report = explore(
            spec,
            monitors=[UniformityMonitor()],
            stop_on_violation=True,
            cache=None,
        )
        assert len(report.violations) == 1
        assert report.stats.stopped_on_violation
        assert not report.complete

    def test_predicate_monitor(self):
        flagged = []

        def never_two_crashes(run):
            crashes = sum(
                1 for p in run.processes if run.crashed_by(p, run.duration)
            )
            flagged.append(crashes)
            return (
                PropertyVerdict.ok()
                if crashes < 2
                else PropertyVerdict.fail("two crashes")
            )

        report = explore(
            nudc_spec(),
            monitors=[PredicateMonitor(never_two_crashes, label="pair")],
            cache=None,
        )
        assert flagged and not report.violations


class TestCaching:
    def test_exhaustive_exploration_cached(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = nudc_spec()
        first = explore(spec, cache=cache)
        second = explore(spec, cache=cache)
        assert not first.cached and second.cached
        assert set(first.runs) == set(second.runs)

    def test_cache_survives_disk_round_trip(self, tmp_path):
        spec = nudc_spec(**LOSSY)
        first = explore(spec, cache=RunCache(tmp_path))
        second = explore(spec, cache=RunCache(tmp_path))  # fresh memory
        assert second.cached
        assert set(first.runs) == set(second.runs)
        # meta needed for replay survives serialization
        for run in second.runs:
            assert replay_exploration(
                spec, run.meta["crash_plan"], tuple(run.meta["trace"])
            ) == run

    def test_monitors_rerun_on_cache_hit(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = nudc_spec(**LOSSY)
        explore(spec, cache=cache)
        hit = explore(spec, monitors=[UniformityMonitor()], cache=cache)
        assert hit.cached and hit.violations

    def test_truncated_exploration_not_cached(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = nudc_spec(**LOSSY, max_executions=5)
        explore(spec, cache=cache)
        assert not explore(spec, cache=cache).cached


class TestCompleteness:
    """Satellite: the sound/sampled distinction surfaces on System."""

    def test_explorer_system_is_complete_and_silent(self):
        system = explore(nudc_spec(), cache=None).system()
        assert system.complete
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            system.knows_crashed("p1", Point(system.runs[0], 0), "p2")

    def test_sampled_system_warns_once(self):
        spec = EnsembleSpec.a5t(
            PROCS,
            uniform_protocol(NUDCProcess),
            t=1,
            workload=single_action("p1", tick=1),
            seeds=(0,),
        )
        system = run_ensemble(spec, cache=None).system()
        assert not system.complete
        pt = Point(system.runs[0], 0)
        with pytest.warns(IncompleteSystemWarning):
            system.knows_crashed("p1", pt, "p2")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second query: already warned
            system.knows_crashed("p1", pt, "p3")

    def test_restriction_preserves_completeness(self):
        system = explore(nudc_spec(), cache=None).system()
        assert system.restrict(lambda run: True).complete

    def test_truncated_exploration_yields_incomplete_system(self):
        report = explore(nudc_spec(**LOSSY, max_executions=5), cache=None)
        with pytest.warns(IncompleteSystemWarning):
            system = report.system()
            system.knows_crashed("p1", Point(system.runs[0], 0), "p2")


class TestReportSurface:
    def test_summary_mentions_stats_and_violations(self):
        report = explore(
            nudc_spec(**LOSSY), monitors=[UniformityMonitor()], cache=None
        )
        text = report.summary()
        assert "explored n=3 t=1 T=6" in text
        assert "[complete]" in text
        assert "violations" in text
        assert "[reduction: dpor]" in text
