"""Differential tests for the model-level fault injection (repro.faults).

The two load-bearing invariants:

* an *empty* plan is never wired in, so runs stay bit-identical to the
  un-instrumented executor;
* the same plan against the same spec injects byte-identical faults
  (all decisions come from a dedicated rng seeded by plan + run seeds).
"""

import pickle

import pytest

from repro.core.protocols import NUDCProcess
from repro.faults import ChannelFaults, DetectorFaults, FaultPlan
from repro.faults.plan import CORRUPT_KIND_PREFIX
from repro.model.context import make_process_ids
from repro.model.events import ReceiveEvent
from repro.runtime import RunSpec, spec_digest
from repro.sim.executor import ExecutionConfig, Executor
from repro.sim.process import uniform_protocol
from repro.workloads.generators import single_action

PROCS = make_process_ids(3)

#: Generous per-copy probabilities so a short run injects every kind.
NOISY = ChannelFaults(
    duplicate_prob=0.25, corrupt_prob=0.25, drop_prob=0.15, delay_prob=0.3
)


def make_spec(plan=None, seed=0, max_ticks=5000):
    config = None
    if plan is not None or max_ticks != 5000:
        config = ExecutionConfig(max_ticks=max_ticks, fault_plan=plan)
    return RunSpec(
        processes=PROCS,
        protocol=uniform_protocol(NUDCProcess),
        workload=single_action("p1", tick=1),
        config=config,
        seed=seed,
    )


def run_of(spec):
    return Executor.from_spec(spec).run()


class TestEmptyPlanTransparency:
    def test_empty_plan_bit_identical_to_uninstrumented(self):
        baseline = run_of(make_spec())
        wrapped = run_of(
            make_spec().with_(config=ExecutionConfig(fault_plan=FaultPlan.none()))
        )
        assert baseline == wrapped
        for p in PROCS:
            assert baseline.timeline(p) == wrapped.timeline(p)
        # No injector was created, so no fault counters either.
        assert "faults" not in wrapped.meta
        assert baseline.meta == wrapped.meta

    def test_inactive_subplans_count_as_empty(self):
        assert FaultPlan.none().is_empty
        assert FaultPlan(channel=ChannelFaults(), detector=DetectorFaults()).is_empty
        assert not FaultPlan(channel=ChannelFaults(drop_prob=0.1)).is_empty
        assert not FaultPlan(stalls=(("p1", 2, 5),)).is_empty


class TestReplayability:
    def test_same_plan_same_spec_identical_faults(self):
        plan = FaultPlan(seed=3, channel=NOISY)
        a = run_of(make_spec(plan=plan, max_ticks=400))
        b = run_of(make_spec(plan=plan, max_ticks=400))
        assert a == b
        assert a.meta["faults"] == b.meta["faults"]
        assert sum(a.meta["faults"].values()) > 0

    def test_plan_seed_changes_the_injection(self):
        a = run_of(make_spec(plan=FaultPlan(seed=0, channel=NOISY), max_ticks=400))
        b = run_of(make_spec(plan=FaultPlan(seed=1, channel=NOISY), max_ticks=400))
        assert a != b or a.meta["faults"] != b.meta["faults"]


class TestChannelFaults:
    def test_corruption_rewrites_kind_payload_survives(self):
        plan = FaultPlan(channel=ChannelFaults(corrupt_prob=1.0))
        run = run_of(make_spec(plan=plan, max_ticks=300))
        received = [
            e for p in PROCS for e in run.events(p) if isinstance(e, ReceiveEvent)
        ]
        assert received
        assert all(
            e.message.kind.startswith(CORRUPT_KIND_PREFIX) for e in received
        )
        assert run.meta["faults"]["corruptions"] >= len(received)

    def test_total_drop_silences_the_network(self):
        plan = FaultPlan(channel=ChannelFaults(drop_prob=1.0))
        run = run_of(make_spec(plan=plan, max_ticks=300))
        assert not any(
            isinstance(e, ReceiveEvent) for p in PROCS for e in run.events(p)
        )
        assert run.meta["faults"]["extra_drops"] > 0
        assert run.meta["dropped"] >= run.meta["faults"]["extra_drops"]


class TestStalls:
    def test_stall_window_freezes_the_process(self):
        plan = FaultPlan(stalls=(("p2", 1, 15),))
        run = run_of(make_spec(plan=plan))
        assert run.meta["faults"]["stalled_ticks"] >= 1
        assert not any(1 <= tick < 15 for tick, _ in run.timeline("p2"))
        # The other processes were not stalled.
        assert any(1 <= tick < 15 for tick, _ in run.timeline("p1"))


class TestCacheability:
    def test_plan_pickles_and_changes_the_spec_digest(self):
        plan = FaultPlan(seed=1, channel=ChannelFaults(drop_prob=0.5))
        assert pickle.loads(pickle.dumps(plan)) == plan
        clean = spec_digest(make_spec())
        faulted = spec_digest(
            make_spec().with_(config=ExecutionConfig(fault_plan=plan))
        )
        assert clean is not None and faulted is not None
        assert clean != faulted


class TestValidation:
    def test_probabilities_validated(self):
        with pytest.raises(ValueError, match="drop_prob"):
            ChannelFaults(drop_prob=1.5)
        with pytest.raises(ValueError, match="max_extra_delay"):
            ChannelFaults(max_extra_delay=0)
        with pytest.raises(ValueError, match="omission_prob"):
            DetectorFaults(omission_prob=-0.1)
        with pytest.raises(ValueError, match="lie_prob"):
            DetectorFaults(lie_prob=2.0)

    def test_stall_windows_validated(self):
        with pytest.raises(ValueError, match="start < end"):
            FaultPlan(stalls=(("p1", 5, 5),))
        with pytest.raises(ValueError, match="start < end"):
            FaultPlan(stalls=(("p1", 0, 3),))

    def test_with_sweeps_fields(self):
        plan = FaultPlan(seed=1)
        assert plan.with_(seed=9).seed == 9
        assert plan.with_(seed=9) != plan
