"""Tests for the atomic-broadcast extension (total order via consensus)."""

import pytest

from repro.core.atomic_broadcast import (
    AtomicBroadcastProcess,
    check_atomic_broadcast,
    deliver_action,
    deliveries,
)
from repro.detectors.base import NoDetector
from repro.detectors.standard import EventuallyWeakOracle, PerfectOracle
from repro.model.context import make_process_ids
from repro.model.events import DoEvent
from repro.model.run import Run
from repro.sim.executor import ExecutionConfig, Executor
from repro.sim.failures import CrashPlan
from repro.sim.process import uniform_protocol
from repro.workloads.generators import action_id

PROCS = make_process_ids(5)
WORKLOAD = [
    (1, "p1", action_id("p1", "m1")),
    (3, "p2", action_id("p2", "m2")),
    (6, "p4", action_id("p4", "m3")),
]
BROADCASTS = {a for _, _, a in WORKLOAD}


def run_ab(
    *,
    seed=0,
    plan=CrashPlan.none(),
    detector=None,
    workload=WORKLOAD,
    max_ticks=4000,
):
    return Executor(
        PROCS,
        uniform_protocol(AtomicBroadcastProcess),
        crash_plan=plan,
        workload=workload,
        detector=detector or EventuallyWeakOracle(stabilization_tick=25),
        config=ExecutionConfig(max_ticks=max_ticks),
        seed=seed,
    ).run()


class TestHappyPath:
    @pytest.mark.parametrize("seed", range(4))
    def test_failure_free(self, seed):
        run = run_ab(seed=seed)
        assert check_atomic_broadcast(run, BROADCASTS)

    def test_everyone_delivers_everything(self):
        run = run_ab()
        for p in PROCS:
            assert set(deliveries(run, p)) == BROADCASTS

    def test_total_order_identical(self):
        run = run_ab(seed=2)
        seqs = {tuple(deliveries(run, p)) for p in PROCS}
        assert len(seqs) == 1


class TestWithFailures:
    @pytest.mark.parametrize("seed", range(4))
    def test_minority_crash(self, seed):
        run = run_ab(seed=seed, plan=CrashPlan.of({"p3": 10, "p5": 18}))
        assert check_atomic_broadcast(run, BROADCASTS)

    def test_crashed_broadcaster_message_still_ordered(self):
        # p2 broadcasts m2 at tick 3 and crashes at 8: if anyone
        # delivered it, everyone correct must, in the same position.
        run = run_ab(seed=1, plan=CrashPlan.of({"p2": 8}))
        verdict = check_atomic_broadcast(run, BROADCASTS)
        assert verdict, verdict.witness

    def test_uniformity_of_delivered_prefix(self):
        run = run_ab(seed=3, plan=CrashPlan.of({"p4": 12}))
        correct = sorted(run.correct())
        reference = deliveries(run, correct[0])
        for p in PROCS:
            seq = deliveries(run, p)
            assert seq == reference[: len(seq)]


class TestRequirements:
    def test_stalls_without_detector_when_coordinator_dies(self):
        run = run_ab(
            seed=0,
            plan=CrashPlan.of({"p1": 2}),
            detector=NoDetector(),
            max_ticks=800,
        )
        # Instance 1's coordinator (p1) is dead and unsuspectable: the
        # survivors deliver nothing.
        assert all(not deliveries(run, p) for p in sorted(run.correct()))

    def test_majority_loss_stalls(self):
        run = run_ab(
            seed=0,
            plan=CrashPlan.of({"p3": 2, "p4": 2, "p5": 2}),
            max_ticks=800,
        )
        assert not check_atomic_broadcast(run, BROADCASTS) or not any(
            deliveries(run, p) for p in PROCS
        )

    def test_works_with_perfect_detector_too(self):
        run = run_ab(seed=0, plan=CrashPlan.of({"p5": 9}), detector=PerfectOracle())
        assert check_atomic_broadcast(run, BROADCASTS)


class TestChecker:
    def test_detects_order_divergence(self):
        r = Run(
            ("p1", "p2"),
            {
                "p1": [
                    (1, DoEvent("p1", deliver_action("a"))),
                    (2, DoEvent("p1", deliver_action("b"))),
                ],
                "p2": [
                    (1, DoEvent("p2", deliver_action("b"))),
                    (2, DoEvent("p2", deliver_action("a"))),
                ],
            },
            duration=4,
        )
        verdict = check_atomic_broadcast(r, {"a", "b"})
        assert not verdict and "diverges" in verdict.witness

    def test_detects_duplicate_delivery(self):
        r = Run(
            ("p1", "p2"),
            {
                "p1": [
                    (1, DoEvent("p1", deliver_action("a"))),
                    (2, DoEvent("p1", ("adeliver", "a"))),
                ],
                "p2": [],
            },
            duration=4,
        )
        # env.perform dedups in real runs; the checker still guards.
        verdict = check_atomic_broadcast(r, {"a"})
        assert not verdict and "twice" in verdict.witness

    def test_detects_unbroadcast_delivery(self):
        r = Run(
            ("p1", "p2"),
            {"p1": [(1, DoEvent("p1", deliver_action("ghost")))], "p2": []},
            duration=4,
        )
        verdict = check_atomic_broadcast(r, {"a"})
        assert not verdict and "never-broadcast" in verdict.witness

    def test_detects_missed_delivery(self):
        r = Run(
            ("p1", "p2"),
            {"p1": [(1, DoEvent("p1", deliver_action("a")))], "p2": []},
            duration=4,
        )
        verdict = check_atomic_broadcast(r, {"a"})
        assert not verdict and "missed" in verdict.witness
