"""Tests for the causal-structure module (happens-before, cuts, clocks)."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocols import NUDCProcess
from repro.knowledge.chains import has_message_chain
from repro.model.causality import (
    causal_graph,
    concurrent,
    happens_before,
    is_consistent_cut,
    lamport_timestamps,
    time_cut_frontier,
)
from repro.model.context import make_process_ids
from repro.model.events import Message, ReceiveEvent, SendEvent
from repro.model.run import Run
from repro.sim.executor import Executor
from repro.sim.failures import CrashPlan
from repro.sim.process import uniform_protocol
from repro.workloads.generators import single_action

SMALL = ("p1", "p2", "p3")
PROCS = make_process_ids(4)
MSG = Message("m")


def relay_run():
    m2 = Message("fwd")
    return Run(
        SMALL,
        {
            "p1": [(2, SendEvent("p1", "p2", MSG))],
            "p2": [(4, ReceiveEvent("p2", "p1", MSG)), (5, SendEvent("p2", "p3", m2))],
            "p3": [(7, ReceiveEvent("p3", "p2", m2))],
        },
        duration=10,
    )


def protocol_run(seed=0):
    return Executor(
        PROCS,
        uniform_protocol(NUDCProcess),
        crash_plan=CrashPlan.of({"p3": 9}),
        workload=single_action("p1", tick=1),
        seed=seed,
    ).run()


class TestCausalGraph:
    def test_nodes_are_events(self):
        g = causal_graph(relay_run())
        assert ("p1", 2) in g and ("p3", 7) in g
        assert isinstance(g.nodes[("p1", 2)]["event"], SendEvent)

    def test_local_and_message_edges(self):
        g = causal_graph(relay_run())
        assert g.edges[("p2", 4), ("p2", 5)]["kind"] == "local"
        assert g.edges[("p1", 2), ("p2", 4)]["kind"] == "message"

    def test_graph_is_dag(self):
        for seed in range(3):
            g = causal_graph(protocol_run(seed))
            assert nx.is_directed_acyclic_graph(g)

    def test_edges_respect_time(self):
        # R3 makes every causal edge point forward in global time.
        g = causal_graph(protocol_run())
        for (p1, t1), (p2, t2) in g.edges:
            assert t1 <= t2


class TestHappensBefore:
    def test_transitive_chain(self):
        r = relay_run()
        assert happens_before(r, ("p1", 2), ("p3", 7))
        assert not happens_before(r, ("p3", 7), ("p1", 2))

    def test_irreflexive(self):
        assert not happens_before(relay_run(), ("p1", 2), ("p1", 2))

    def test_concurrent_events(self):
        m2 = Message("x")
        r = Run(
            SMALL,
            {
                "p1": [(2, SendEvent("p1", "p2", MSG))],
                "p2": [],
                "p3": [(2, SendEvent("p3", "p2", m2))],
            },
            duration=5,
        )
        assert concurrent(r, ("p1", 2), ("p3", 2))

    def test_unknown_node_raises(self):
        with pytest.raises(KeyError):
            happens_before(relay_run(), ("p1", 99), ("p3", 7))

    def test_agrees_with_message_chains(self):
        """Process-level projection: a chain from p after m to q by m'
        exists iff some event of p at >= m happens-before (or is) an
        event of q at <= m'."""
        run = protocol_run()
        g = causal_graph(run)
        for target in ("p2", "p4"):
            chain = has_message_chain(run, "p1", 1, target, run.duration)
            p1_nodes = [n for n in g if n[0] == "p1" and n[1] >= 1]
            reach = any(
                nx.has_path(g, a, b)
                for a in p1_nodes
                for b in g
                if b[0] == target
            )
            assert chain == reach


class TestConsistentCuts:
    def test_time_cuts_are_consistent(self):
        run = protocol_run()
        for m in range(0, run.duration + 1, 5):
            assert is_consistent_cut(run, time_cut_frontier(run, m))

    def test_receive_without_send_is_inconsistent(self):
        r = relay_run()
        # Include p2's receive (1 event... receive is p2's first event)
        # but nothing of p1.
        frontier = {"p1": 0, "p2": 1, "p3": 0}
        assert not is_consistent_cut(r, frontier)

    def test_send_without_receive_is_fine(self):
        r = relay_run()
        frontier = {"p1": 1, "p2": 0, "p3": 0}
        assert is_consistent_cut(r, frontier)

    def test_out_of_range_frontier_rejected(self):
        with pytest.raises(ValueError):
            is_consistent_cut(relay_run(), {"p1": 99})


class TestLamportClocks:
    def test_clock_condition(self):
        run = protocol_run()
        clocks = lamport_timestamps(run)
        g = causal_graph(run)
        for a, b in g.edges:
            assert clocks[a] < clocks[b]

    def test_sources_start_at_one(self):
        clocks = lamport_timestamps(relay_run())
        assert clocks[("p1", 2)] == 1
        assert clocks[("p3", 7)] == 4  # send, recv, send, recv

    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 10**4))
    def test_clock_condition_property(self, seed):
        run = protocol_run(seed % 50)
        clocks = lamport_timestamps(run)
        g = causal_graph(run)
        for a, b in g.edges:
            assert clocks[a] < clocks[b]


class TestVectorClocks:
    def test_strong_clock_condition(self):
        """V(a) < V(b) iff a happens-before b -- the characterisation
        Lamport clocks lack."""
        from repro.model.causality import vector_less, vector_timestamps

        run = protocol_run()
        clocks = vector_timestamps(run)
        g = causal_graph(run)
        import itertools

        nodes = list(g.nodes)[:30]  # keep the quadratic check bounded
        for a, b in itertools.combinations(nodes, 2):
            hb = nx.has_path(g, a, b)
            assert vector_less(clocks[a], clocks[b]) == hb

    def test_own_component_counts_events(self):
        from repro.model.causality import vector_timestamps

        run = relay_run()
        clocks = vector_timestamps(run)
        assert clocks[("p2", 5)]["p2"] == 2  # p2's second event
        assert clocks[("p2", 5)]["p1"] == 1  # saw p1's send

    def test_concurrent_events_incomparable(self):
        from repro.model.causality import vector_less, vector_timestamps

        m2 = Message("x")
        r = Run(
            SMALL,
            {
                "p1": [(2, SendEvent("p1", "p2", MSG))],
                "p2": [],
                "p3": [(2, SendEvent("p3", "p2", m2))],
            },
            duration=5,
        )
        clocks = vector_timestamps(r)
        a, b = clocks[("p1", 2)], clocks[("p3", 2)]
        assert not vector_less(a, b) and not vector_less(b, a)
