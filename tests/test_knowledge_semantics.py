"""Tests for the model checker: truth, temporal sweep, knowledge, axioms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.knowledge.analysis import (
    negative_introspection,
    positive_introspection,
)
from repro.knowledge.formulas import (
    FALSE,
    TRUE,
    And,
    Atom,
    Box,
    Crashed,
    Diamond,
    Did,
    Implies,
    Inited,
    Knows,
    Not,
    Or,
    Received,
    Sent,
)
from repro.knowledge.semantics import ModelChecker
from repro.model.events import (
    CrashEvent,
    DoEvent,
    InitEvent,
    Message,
    ReceiveEvent,
    SendEvent,
)
from repro.model.run import Point, Run
from repro.model.system import System

PROCS = ("p1", "p2", "p3")
MSG = Message("m")


def crash_run():
    """p3 crashes; p1 learns via a message at time 4."""
    return Run(
        PROCS,
        {
            "p1": [(4, ReceiveEvent("p1", "p2", MSG)), (6, DoEvent("p1", "x"))],
            "p2": [(1, InitEvent("p2", ("p2", "x"))), (3, SendEvent("p2", "p1", MSG))],
            "p3": [(2, CrashEvent("p3"))],
        },
        duration=8,
    )


def quiet_run():
    """Same prefix for p1 up to time 3, no crash, no message."""
    return Run(
        PROCS,
        {
            "p1": [],
            "p2": [(1, InitEvent("p2", ("p2", "x"))), (3, SendEvent("p2", "p1", MSG))],
            "p3": [],
        },
        duration=8,
    )


def checker():
    return ModelChecker(System([crash_run(), quiet_run()]))


class TestPrimitiveTruth:
    def test_constants(self):
        mc = checker()
        pt = Point(crash_run(), 0)
        assert mc.holds(TRUE, pt)
        assert not mc.holds(FALSE, pt)

    def test_event_primitives_track_history(self):
        mc = checker()
        r = crash_run()
        assert not mc.holds(Crashed("p3"), Point(r, 1))
        assert mc.holds(Crashed("p3"), Point(r, 2))
        assert mc.holds(Inited("p2", ("p2", "x")), Point(r, 1))
        assert mc.holds(Sent("p2", "p1", MSG), Point(r, 3))
        assert not mc.holds(Sent("p2", "p3"), Point(r, 8))
        assert mc.holds(Received("p1", "p2"), Point(r, 4))
        assert mc.holds(Did("p1", "x"), Point(r, 6))

    def test_atom_fn(self):
        mc = checker()
        even = Atom("even-time", lambda pt: pt.time % 2 == 0)
        assert mc.holds(even, Point(crash_run(), 4))
        assert not mc.holds(even, Point(crash_run(), 5))

    def test_time_beyond_duration_clamps(self):
        mc = checker()
        assert mc.holds(Crashed("p3"), Point(crash_run(), 1000))


class TestConnectives:
    def test_boolean_table(self):
        mc = checker()
        pt = Point(crash_run(), 5)
        c = Crashed("p3")
        n = Crashed("p1")
        assert mc.holds(And(c, Not(n)), pt)
        assert mc.holds(Or(n, c), pt)
        assert mc.holds(Implies(n, FALSE), pt)
        assert not mc.holds(And(c, n), pt)


class TestTemporal:
    def test_diamond_looks_forward(self):
        mc = checker()
        r = crash_run()
        assert mc.holds(Diamond(Crashed("p3")), Point(r, 0))
        assert mc.holds(Diamond(Did("p1", "x")), Point(r, 0))
        assert not mc.holds(Diamond(Crashed("p1")), Point(r, 0))

    def test_box_requires_suffix(self):
        mc = checker()
        r = crash_run()
        assert mc.holds(Box(Crashed("p3")), Point(r, 2))
        assert not mc.holds(Box(Crashed("p3")), Point(r, 1))

    def test_final_cut_repeats_forever(self):
        # Box phi at the duration is phi at the duration.
        mc = checker()
        r = crash_run()
        assert mc.holds(Box(Crashed("p3")), Point(r, r.duration))
        assert mc.holds(Box(Not(Crashed("p1"))), Point(r, 0))

    def test_diamond_box_duality(self):
        mc = checker()
        r = crash_run()
        phi = Crashed("p3")
        for m in range(r.duration + 1):
            pt = Point(r, m)
            assert mc.holds(Diamond(phi), pt) == (
                not mc.holds(Box(Not(phi)), pt)
            )


class TestKnowledge:
    def test_no_knowledge_before_evidence(self):
        mc = checker()
        # At time 3, p1's history is empty in both runs.
        assert not mc.holds(Knows("p1", Crashed("p3")), Point(crash_run(), 3))

    def test_knowledge_after_distinguishing_event(self):
        mc = checker()
        assert mc.holds(Knows("p1", Crashed("p3")), Point(crash_run(), 4))

    def test_self_knowledge_of_local_state(self):
        mc = checker()
        assert mc.holds(
            Knows("p2", Inited("p2", ("p2", "x"))), Point(crash_run(), 1)
        )

    def test_nested_knowledge(self):
        mc = checker()
        # p2 cannot know whether p1 knows about the crash (its own
        # history is identical in both runs).
        f = Knows("p2", Knows("p1", Crashed("p3")))
        assert not mc.holds(f, Point(crash_run(), 5))

    def test_veridicality(self):
        mc = checker()
        f = Implies(Knows("p1", Crashed("p3")), Crashed("p3"))
        assert mc.valid(f)

    def test_introspection_axioms(self):
        mc = checker()
        assert positive_introspection(mc, Crashed("p3"), "p1")
        assert negative_introspection(mc, Crashed("p3"), "p1")


class TestValidity:
    def test_valid_and_counterexample(self):
        mc = checker()
        assert mc.valid(TRUE)
        cx = mc.counterexample(Crashed("p3"))
        assert cx is not None and cx.time == 0

    def test_satisfiable(self):
        mc = checker()
        sat = mc.satisfiable(And(Crashed("p3"), Received("p1", "p2")))
        assert sat is not None
        assert sat.time >= 4
        assert mc.satisfiable(Crashed("p1")) is None


class TestCachingRegression:
    def test_distinct_formulas_do_not_collide(self):
        """Regression: caches were once keyed by id(formula); after GC a
        fresh formula could inherit a dead formula's cache entries."""
        mc = checker()
        pt = Point(crash_run(), 4)
        # Evaluate and discard many formulas to churn ids.
        for i in range(50):
            mc.holds(And(Crashed("p3"), Atom(f"a{i}", lambda pt: True)), pt)
        assert not mc.holds(Crashed("p1"), pt)
        assert mc.holds(Crashed("p3"), pt)

    def test_cache_consistency_across_points(self):
        mc = checker()
        f = Knows("p1", Crashed("p3"))
        first = [mc.holds(f, Point(crash_run(), m)) for m in range(9)]
        second = [mc.holds(f, Point(crash_run(), m)) for m in range(9)]
        assert first == second
        assert first == [False] * 4 + [True] * 5


class TestKnowledgeProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 8), st.sampled_from(PROCS))
    def test_knowledge_of_stable_facts_is_monotone(self, m, observer):
        """K_p of a stable formula never flips back to false."""
        mc = checker()
        f = Knows(observer, Crashed("p3"))
        r = crash_run()
        if mc.holds(f, Point(r, m)):
            for later in range(m, r.duration + 1):
                assert mc.holds(f, Point(r, later))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 8), st.sampled_from(PROCS), st.sampled_from(PROCS))
    def test_veridicality_everywhere(self, m, observer, target):
        mc = checker()
        for r in (crash_run(), quiet_run()):
            pt = Point(r, m)
            if mc.holds(Knows(observer, Crashed(target)), pt):
                assert mc.holds(Crashed(target), pt)
