"""Tests for the ensemble builders (Systems from protocol sweeps)."""

from repro.core.protocols import NUDCProcess, StrongFDUDCProcess
from repro.detectors.standard import PerfectOracle
from repro.model.context import Context, make_process_ids
from repro.sim.ensembles import a5t_ensemble, build_ensemble
from repro.sim.failures import CrashPlan, all_crash_plans
from repro.sim.process import uniform_protocol
from repro.workloads.generators import post_crash_workload, single_action

PROCS = make_process_ids(3)


class TestBuildEnsemble:
    def test_size_is_plans_times_seeds(self):
        plans = [CrashPlan.none(), CrashPlan.of({"p2": 5})]
        system = build_ensemble(
            PROCS,
            uniform_protocol(NUDCProcess),
            crash_plans=plans,
            workload=single_action("p1", tick=1),
            seeds=(0, 1, 2),
        )
        assert len(system) == 6

    def test_callable_workload_receives_plan(self):
        seen = []

        def workload_for(plan):
            seen.append(plan.faulty)
            return post_crash_workload(PROCS, plan, actions_per_survivor=1)

        build_ensemble(
            PROCS,
            uniform_protocol(StrongFDUDCProcess),
            crash_plans=[CrashPlan.of({"p2": 5})],
            workload=workload_for,
            detector=PerfectOracle(),
            seeds=(0,),
        )
        assert seen == [frozenset({"p2"})]

    def test_context_attached(self):
        ctx = Context.of(3, failure_bound=1)
        system = build_ensemble(
            PROCS,
            uniform_protocol(NUDCProcess),
            crash_plans=[CrashPlan.none()],
            workload=[],
            seeds=(0,),
            context=ctx,
        )
        assert system.context is ctx

    def test_runs_record_their_plans(self):
        plans = [CrashPlan.none(), CrashPlan.of({"p3": 4})]
        system = build_ensemble(
            PROCS,
            uniform_protocol(NUDCProcess),
            crash_plans=plans,
            workload=single_action("p1", tick=1),
            seeds=(0,),
        )
        assert [r.meta["crash_plan"] for r in system] == plans


class TestA5tEnsemble:
    def test_covers_every_pattern(self):
        system = a5t_ensemble(
            PROCS,
            uniform_protocol(NUDCProcess),
            t=2,
            workload=single_action("p1", tick=1),
            seeds=(0,),
        )
        expected = {p.faulty for p in all_crash_plans(PROCS, max_failures=2)}
        observed = {r.faulty() for r in system}
        assert observed == expected

    def test_faulty_sets_match_plans(self):
        system = a5t_ensemble(
            PROCS,
            uniform_protocol(NUDCProcess),
            t=1,
            workload=single_action("p1", tick=1),
            seeds=(0,),
        )
        for run in system:
            assert run.faulty() == run.meta["crash_plan"].faulty
