"""Unit tests for runs, points, and the R1--R5 validator."""

import pytest

from repro.model.events import (
    CrashEvent,
    DoEvent,
    InitEvent,
    Message,
    ReceiveEvent,
    SendEvent,
)
from repro.model.run import Point, Run, RunValidationError, r5_violations, validate_run

PROCS = ("p1", "p2", "p3")


def make_run(timelines, duration=10, meta=None):
    return Run(PROCS, timelines, duration, meta=meta)


def simple_run():
    msg = Message("alpha", "x")
    return make_run(
        {
            "p1": [
                (1, InitEvent("p1", "x")),
                (2, SendEvent("p1", "p2", msg)),
                (3, DoEvent("p1", "x")),
            ],
            "p2": [(4, ReceiveEvent("p2", "p1", msg)), (5, DoEvent("p2", "x"))],
            "p3": [(3, CrashEvent("p3"))],
        }
    )


class TestRunAsFunction:
    def test_r1_initial_cut_empty(self):
        r = simple_run()
        cut = r.cut(0)
        # R1: at time 0, every process's history is empty.
        for p in PROCS:
            assert len(cut[p]) == 0

    def test_history_grows_with_time(self):
        r = simple_run()
        assert len(r.history("p1", 0)) == 0
        assert len(r.history("p1", 1)) == 1
        assert len(r.history("p1", 2)) == 2
        assert len(r.history("p1", 3)) == 3
        assert len(r.history("p1", 9)) == 3

    def test_history_beyond_duration_is_final(self):
        r = simple_run()
        assert r.history("p1", 1000) == r.final_history("p1")

    def test_negative_time_raises(self):
        with pytest.raises(ValueError):
            simple_run().history("p1", -1)

    def test_cut_collects_all_histories(self):
        r = simple_run()
        c = r.cut(5)
        assert c["p2"].received("p1")
        assert c["p3"].crashed

    def test_points_enumeration(self):
        r = simple_run()
        pts = list(r.points())
        assert len(pts) == r.duration + 1
        assert pts[0].time == 0

    def test_all_events_sorted(self):
        r = simple_run()
        times = [t for t, _ in r.all_events()]
        assert times == sorted(times)


class TestFailureQueries:
    def test_faulty_set(self):
        r = simple_run()
        assert r.faulty() == frozenset({"p3"})
        assert r.correct() == frozenset({"p1", "p2"})

    def test_crash_time(self):
        r = simple_run()
        assert r.crash_time("p3") == 3
        assert r.crash_time("p1") is None

    def test_crashed_by(self):
        r = simple_run()
        assert not r.crashed_by("p3", 2)
        assert r.crashed_by("p3", 3)
        assert r.crashed_by("p3", 100)
        assert not r.crashed_by("p1", 100)


class TestRunIdentity:
    def test_meta_excluded_from_equality(self):
        a = simple_run()
        b = simple_run()
        b.meta["seed"] = 42
        assert a == b
        assert hash(a) == hash(b)

    def test_different_durations_differ(self):
        msg = Message("m")
        t = {"p1": [(1, SendEvent("p1", "p2", msg))], "p2": [], "p3": []}
        assert make_run(t, duration=5) != make_run(t, duration=6)


class TestExtends:
    def test_run_extends_own_prefix(self):
        r = simple_run()
        assert r.extends(r, 3)

    def test_divergent_runs_do_not_extend(self):
        r1 = simple_run()
        r2 = make_run({"p1": [(1, InitEvent("p1", "y"))], "p2": [], "p3": []})
        # At time 0 all cuts are empty (R1), so the prefix relation holds
        # trivially; from time 1 on the runs diverge.
        assert r2.extends(r1, 0)
        assert not r2.extends(r1, 1)


class TestPoint:
    def test_indistinguishability_is_history_equality(self):
        r = simple_run()
        # p3 crashes at 3; before that p3's history is empty in any run.
        other = make_run({"p1": [], "p2": [], "p3": []})
        assert Point(r, 2).indistinguishable_to("p3", Point(other, 7))
        assert not Point(r, 3).indistinguishable_to("p3", Point(other, 7))

    def test_point_cut(self):
        r = simple_run()
        assert Point(r, 4).cut() == r.cut(4)


class TestValidation:
    def test_valid_run_passes(self):
        validate_run(simple_run())

    def test_event_in_wrong_history(self):
        r = make_run({"p1": [(1, DoEvent("p2", "a"))], "p2": [], "p3": []})
        with pytest.raises(RunValidationError, match="recorded in"):
            validate_run(r)

    def test_two_events_same_tick_rejected(self):
        r = make_run(
            {"p1": [(2, DoEvent("p1", "a")), (2, DoEvent("p1", "b"))], "p2": [], "p3": []}
        )
        with pytest.raises(RunValidationError, match="R2"):
            validate_run(r)

    def test_r3_receive_without_send(self):
        r = make_run(
            {"p1": [], "p2": [(1, ReceiveEvent("p2", "p1", Message("m")))], "p3": []}
        )
        with pytest.raises(RunValidationError, match="R3"):
            validate_run(r)

    def test_r3_receive_before_send(self):
        msg = Message("m")
        r = make_run(
            {
                "p1": [(6, SendEvent("p1", "p2", msg))],
                "p2": [(2, ReceiveEvent("p2", "p1", msg))],
                "p3": [],
            }
        )
        with pytest.raises(RunValidationError, match="R3"):
            validate_run(r)

    def test_r3_multiplicity(self):
        # Two receives need two sends.
        msg = Message("m")
        r = make_run(
            {
                "p1": [(1, SendEvent("p1", "p2", msg))],
                "p2": [
                    (2, ReceiveEvent("p2", "p1", msg)),
                    (3, ReceiveEvent("p2", "p1", msg)),
                ],
                "p3": [],
            }
        )
        with pytest.raises(RunValidationError, match="R3"):
            validate_run(r)

    def test_r4_enforced_by_history(self):
        # The Run constructor builds histories by appending, so an event
        # after a crash raises at construction time.
        with pytest.raises(ValueError):
            make_run(
                {
                    "p1": [(1, CrashEvent("p1")), (2, DoEvent("p1", "a"))],
                    "p2": [],
                    "p3": [],
                }
            )

    def test_init_twice_rejected(self):
        r = make_run(
            {
                "p1": [(1, InitEvent("p1", "x")), (2, InitEvent("p1", "x"))],
                "p2": [],
                "p3": [],
            }
        )
        with pytest.raises(RunValidationError, match="twice"):
            validate_run(r)

    def test_init_in_foreign_history_rejected(self):
        r = make_run({"p1": [(1, InitEvent("p1", "x"))], "p2": [], "p3": []})
        validate_run(r)  # sanity: the well-formed version passes
        bad = make_run({"p2": [(1, InitEvent("p1", "x"))], "p1": [], "p3": []})
        with pytest.raises(RunValidationError):
            validate_run(bad)


class TestR5:
    def test_persistent_unreceived_send_to_live_process_violates(self):
        msg = Message("m")
        sends = [(i, SendEvent("p1", "p2", msg)) for i in range(1, 7)]
        r = make_run({"p1": sends, "p2": [], "p3": []}, duration=6)
        assert r5_violations(r)
        with pytest.raises(RunValidationError, match="R5"):
            validate_run(r)

    def test_sends_to_crashed_process_exempt(self):
        msg = Message("m")
        sends = [(i, SendEvent("p1", "p2", msg)) for i in range(1, 7)]
        r = make_run(
            {"p1": sends, "p2": [(1, CrashEvent("p2"))], "p3": []}, duration=6
        )
        assert not r5_violations(r)

    def test_one_receipt_satisfies_finite_r5(self):
        msg = Message("m")
        sends = [(i, SendEvent("p1", "p2", msg)) for i in range(1, 7)]
        r = make_run(
            {
                "p1": sends,
                "p2": [(7, ReceiveEvent("p2", "p1", msg))],
                "p3": [],
            },
            duration=7,
        )
        assert not r5_violations(r)

    def test_below_threshold_not_flagged(self):
        msg = Message("m")
        sends = [(i, SendEvent("p1", "p2", msg)) for i in range(1, 4)]
        r = make_run({"p1": sends, "p2": [], "p3": []}, duration=4)
        assert not r5_violations(r, send_threshold=5)
