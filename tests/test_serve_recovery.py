"""Crash-recovery tests for the serve journal (repro.serve.journal).

The write-ahead contract under test: every mutating op (``create`` /
``load`` / ``ingest``) is journaled before it is applied, so a server
rebooted over the same journal directory rebuilds every session through
the same decode/dedup/extend path that built it live -- and answers
*bit-identically*, on both buffer backends.  Damage degrades, never
crashes: a truncated or corrupt tail segment ends the verified prefix
(the rest is quarantined, the session surfaces ``recovered:
"partial"``), and a session whose base record is unusable is skipped
and reported.
"""

from __future__ import annotations

import asyncio
import random
import threading

import pytest

from repro.knowledge import Crashed
from repro.model.synthetic import synthetic_run, synthetic_system
from repro.runtime.cache import RunCache
from repro.serve.client import (
    ServeClient,
    ck_query,
    e_query,
    knows_query,
    runs_to_arena_payload,
)
from repro.serve.journal import ServeJournal, session_dirname
from repro.serve.server import EpistemicServer
from repro.serve.state import ServeState

BACKENDS = ["numpy", "no-numpy"]


@pytest.fixture(params=BACKENDS)
def backend(request, monkeypatch):
    if request.param == "no-numpy":
        monkeypatch.setenv("REPRO_COLUMNAR_NUMPY", "0")
    else:
        monkeypatch.delenv("REPRO_COLUMNAR_NUMPY", raising=False)
    return request.param


def _base():
    return synthetic_system(3, 8, seed=21, duration=5)


def _batches(base, count=3, size=4):
    """Ingest batches with a deliberate duplicate in each, so recovery
    must reproduce the dedup decisions too."""
    rng = random.Random(97)
    out = []
    for i in range(count):
        fresh = [
            synthetic_run(base.processes, rng, duration=5, alphabet=3)
            for _ in range(size - 1)
        ]
        out.append(runs_to_arena_payload([base.runs[i], *fresh]))
    return out


def _journaled_state(root, base, batches):
    state = ServeState(journal=ServeJournal(root))
    state.create("s", runs_to_arena_payload(base.runs))
    for payload in batches:
        state.ingest("s", payload)
    return state


def _sweep(session):
    """A deterministic query sweep whose full result dicts are compared."""
    epoch = session.epoch
    procs = list(epoch.system.processes)
    crashed = Crashed(procs[1])
    answers = []
    for i, run in enumerate(epoch.system.runs):
        for m in (0, run.duration // 2, run.duration):
            answers.append(
                session.run_query(knows_query(procs[0], crashed, i, m))
            )
            answers.append(
                session.run_query(
                    {"kind": "known_crashed", "process": procs[2], "run": i, "time": m}
                )
            )
    answers.append(session.run_query(ck_query(procs, crashed, 0, 2)))
    answers.append(session.run_query(e_query(procs, 2, crashed, 0, 3)))
    answers.append(
        session.run_query(
            {
                "kind": "ck_points",
                "group": procs,
                "formula": {"op": "crashed", "process": procs[1]},
            }
        )
    )
    return answers


def _segments(root, name="s"):
    return sorted((root / session_dirname(name)).glob("seg-*.json"))


def _quarantined(root, name="s"):
    return sorted((root / session_dirname(name)).glob("*.quarantined"))


def test_replay_is_bit_identical_to_live(tmp_path, backend) -> None:
    base = _base()
    live = _journaled_state(tmp_path, base, _batches(base))
    live_session = live.sessions["s"]
    want = _sweep(live_session)

    recovered = ServeState(journal=ServeJournal(tmp_path))
    report = recovered.recover()
    assert [(name, status) for name, status in report.recovered] == [("s", "full")]
    assert report.skipped == []
    session = recovered.sessions["s"]
    assert session.recovered == "full"
    assert session.generation == live_session.generation == 3
    assert session.system.runs == live_session.system.runs
    assert _sweep(session) == want
    # Recovery is visible (and only as a status) in the descriptors.
    assert session.describe()["recovered"] == "full"
    assert session.envelope()["recovered"] == "full"
    assert "recovered" not in live_session.describe()


def test_recovery_is_idempotent_across_reboots(tmp_path) -> None:
    base = _base()
    _journaled_state(tmp_path, base, _batches(base))
    first = ServeState(journal=ServeJournal(tmp_path))
    first.recover()
    # A recovered server keeps journaling: reboot it again (recovery
    # appends nothing, so the journal is unchanged and replays the same).
    second = ServeState(journal=ServeJournal(tmp_path))
    second.recover()
    assert (
        second.sessions["s"].system.runs == first.sessions["s"].system.runs
    )
    assert second.sessions["s"].generation == first.sessions["s"].generation


def test_journaled_but_uncommitted_ingest_recovers(tmp_path) -> None:
    """The WAL half-step: a crash after the journal append but before the
    in-memory apply must still recover the ingest (it was acknowledged
    durable), and the client's idempotent re-send must add nothing."""
    base = _base()
    batch = _batches(base, count=1)[0]
    state = ServeState(journal=ServeJournal(tmp_path))
    state.create("s", runs_to_arena_payload(base.runs))
    prepared = state.prepare_ingest("s", batch)
    state.journal_append(prepared.record)
    # -- crash here: commit_ingest never runs ------------------------------
    assert state.sessions["s"].generation == 0

    recovered = ServeState(journal=ServeJournal(tmp_path))
    recovered.recover()
    session = recovered.sessions["s"]
    assert session.recovered == "full"
    assert session.generation == 1

    resend = recovered.ingest("s", batch)
    assert resend["added"] == 0
    assert resend["generation"] == 1


def test_truncated_tail_recovers_partial(tmp_path) -> None:
    base = _base()
    _journaled_state(tmp_path, base, _batches(base))
    segments = _segments(tmp_path)
    assert len(segments) == 4  # create + 3 ingests
    torn = segments[-1].read_bytes()
    segments[-1].write_bytes(torn[: len(torn) // 2])

    # The verifiable prefix is exactly the uninterrupted two-ingest state.
    base_again = _base()
    oracle = _journaled_state(tmp_path / "oracle", base_again, _batches(base_again)[:2])

    recovered = ServeState(journal=ServeJournal(tmp_path))
    report = recovered.recover()
    assert report.partial == ["s"]
    session = recovered.sessions["s"]
    assert session.recovered == "partial"
    assert session.generation == 2
    assert session.system.runs == oracle.sessions["s"].system.runs
    assert session.envelope()["recovered"] == "partial"
    assert _sweep(session) == _sweep(oracle.sessions["s"])
    # The torn segment is preserved for forensics, never re-read.
    assert [p.name for p in _quarantined(tmp_path)] == ["seg-00000003.json.quarantined"]


def test_corrupt_segment_quarantines_its_suffix(tmp_path) -> None:
    base = _base()
    _journaled_state(tmp_path, base, _batches(base))
    segments = _segments(tmp_path)
    body = bytearray(segments[1].read_bytes())
    body[len(body) // 2] ^= 0xFF  # checksum break inside the record
    segments[1].write_bytes(bytes(body))

    recovered = ServeState(journal=ServeJournal(tmp_path))
    report = recovered.recover()
    assert report.partial == ["s"]
    session = recovered.sessions["s"]
    # Only the create survives: everything from the corrupt segment on
    # is out, including the intact segments behind it (a gap would
    # reorder ingests, which the bit-equality contract forbids).
    assert session.generation == 0
    assert session.system.runs == base.runs
    assert len(_quarantined(tmp_path)) == 3


def test_unrecoverable_base_record_is_skipped(tmp_path) -> None:
    base = _base()
    _journaled_state(tmp_path, base, _batches(base, count=1))
    segments = _segments(tmp_path)
    segments[0].write_text("{torn", encoding="utf-8")

    recovered = ServeState(journal=ServeJournal(tmp_path))
    report = recovered.recover()
    assert recovered.sessions == {}
    assert report.recovered == []
    [(dirname, reason)] = report.skipped
    assert dirname == session_dirname("s")
    assert reason
    assert "unrecoverable" in report.summary()


def test_load_sessions_replay_through_the_cache(tmp_path) -> None:
    from repro.explore.reduction import ExploreStats

    cache = RunCache(tmp_path / "cache")
    runs = _base().runs
    cache.put_exploration("abc123", runs, ExploreStats())

    root = tmp_path / "journal"
    state = ServeState(cache, journal=ServeJournal(root))
    state.load_digest("explored", "abc123")
    state.ingest(
        "explored", _batches(_base(), count=1)[0]
    )

    recovered = ServeState(RunCache(tmp_path / "cache"), journal=ServeJournal(root))
    report = recovered.recover()
    assert [name for name, _ in report.recovered] == ["explored"]
    session = recovered.sessions["explored"]
    assert session.recovered == "full"
    assert session.generation == 1
    assert session.system.runs == state.sessions["explored"].system.runs


def test_recovered_status_surfaces_over_the_wire(tmp_path) -> None:
    base = _base()
    _journaled_state(tmp_path, base, _batches(base))
    segments = _segments(tmp_path)
    torn = segments[-1].read_bytes()
    segments[-1].write_bytes(torn[: len(torn) // 3])

    state = ServeState(journal=ServeJournal(tmp_path))
    state.recover()
    server = EpistemicServer(state)
    bound = {}
    started = threading.Event()

    def _run() -> None:
        loop = asyncio.new_event_loop()
        try:
            asyncio.set_event_loop(loop)
            bound["addr"] = loop.run_until_complete(server.start())
            started.set()
            loop.run_until_complete(server.run())
        finally:
            loop.close()

    thread = threading.Thread(target=_run, daemon=True)
    thread.start()
    assert started.wait(timeout=30)
    host, port = bound["addr"]
    try:
        with ServeClient.connect(host, port) as client:
            procs = list(base.processes)
            response = client.query_response(
                "s", [knows_query(procs[0], Crashed(procs[1]), 0, 2)]
            )
            assert response["recovered"] == "partial"
            info = client.info()
            assert info["systems"]["s"]["recovered"] == "partial"
            assert info["journal"]["sessions"] >= 1
            client.shutdown()
    finally:
        thread.join(timeout=30)
        assert not thread.is_alive()
