"""Unit + property tests for histories and cuts."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.events import (
    CrashEvent,
    DoEvent,
    InitEvent,
    Message,
    ReceiveEvent,
    SendEvent,
    StandardSuspicion,
    SuspectEvent,
)
from repro.model.history import EMPTY_HISTORY, Cut, History


def simple_events():
    """Hypothesis strategy over non-crash events for process p1."""
    sends = st.builds(
        SendEvent,
        st.just("p1"),
        st.sampled_from(["p2", "p3"]),
        st.builds(Message, st.sampled_from(["a", "b"]), st.integers(0, 3)),
    )
    dos = st.builds(DoEvent, st.just("p1"), st.sampled_from(["x", "y"]))
    return st.one_of(sends, dos)


class TestHistoryBasics:
    def test_empty_history(self):
        assert len(EMPTY_HISTORY) == 0
        assert EMPTY_HISTORY.last is None
        assert not EMPTY_HISTORY.crashed

    def test_append_returns_new_history(self):
        h = History()
        h2 = h.append(DoEvent("p1", "a"))
        assert len(h) == 0
        assert len(h2) == 1
        assert h2.last == DoEvent("p1", "a")

    def test_append_after_crash_raises(self):
        h = History().append(CrashEvent("p1"))
        with pytest.raises(ValueError):
            h.append(DoEvent("p1", "a"))

    def test_equality_and_hash(self):
        a = History([DoEvent("p1", "a")])
        b = History().append(DoEvent("p1", "a"))
        assert a == b
        assert hash(a) == hash(b)

    def test_slicing_returns_history(self):
        h = History([DoEvent("p1", "a"), DoEvent("p1", "b")])
        prefix = h[:1]
        assert isinstance(prefix, History)
        assert prefix.is_prefix_of(h)

    def test_crashed_property(self):
        h = History([DoEvent("p1", "a"), CrashEvent("p1")])
        assert h.crashed


class TestHistoryQueries:
    def setup_method(self):
        self.msg = Message("alpha", "x")
        self.h = History(
            [
                InitEvent("p1", "x"),
                SendEvent("p1", "p2", self.msg),
                ReceiveEvent("p1", "p3", Message("ack", "x")),
                DoEvent("p1", "x"),
            ]
        )

    def test_did(self):
        assert self.h.did("x")
        assert not self.h.did("y")

    def test_inited(self):
        assert self.h.inited("x")
        assert not self.h.inited("y")

    def test_sent(self):
        assert self.h.sent("p2")
        assert self.h.sent("p2", self.msg)
        assert not self.h.sent("p3")
        assert not self.h.sent("p2", Message("other"))

    def test_received(self):
        assert self.h.received("p3")
        assert self.h.received("p3", Message("ack", "x"))
        assert not self.h.received("p2")

    def test_count_multiplicity(self):
        h = self.h.append(SendEvent("p1", "p2", self.msg))
        assert h.count(SendEvent("p1", "p2", self.msg)) == 2

    def test_events_of_type(self):
        sends = list(self.h.events_of_type(SendEvent))
        assert len(sends) == 1
        assert sends[0].receiver == "p2"

    def test_find(self):
        found = self.h.find(lambda e: isinstance(e, DoEvent))
        assert found == DoEvent("p1", "x")
        assert self.h.find(lambda e: isinstance(e, CrashEvent)) is None

    def test_index_of(self):
        assert self.h.index_of(InitEvent("p1", "x")) == 0
        assert self.h.index_of(CrashEvent("p1")) is None


class TestLatestSuspicion:
    def test_none_when_no_reports(self):
        assert History().latest_suspicion() is None

    def test_most_recent_report_wins(self):
        h = History(
            [
                SuspectEvent("p1", StandardSuspicion(frozenset({"p2"}))),
                SuspectEvent("p1", StandardSuspicion(frozenset({"p3"}))),
            ]
        )
        latest = h.latest_suspicion()
        assert latest.report.suspects == frozenset({"p3"})

    def test_derived_and_original_tracked_separately(self):
        h = History(
            [
                SuspectEvent("p1", StandardSuspicion(frozenset({"p2"}))),
                SuspectEvent(
                    "p1", StandardSuspicion(frozenset({"p3"})), derived=True
                ),
            ]
        )
        assert h.latest_suspicion(derived=False).report.suspects == frozenset({"p2"})
        assert h.latest_suspicion(derived=True).report.suspects == frozenset({"p3"})


class TestHistoryProperties:
    @given(st.lists(simple_events(), max_size=20))
    def test_append_fold_equals_constructor(self, events):
        folded = History()
        for e in events:
            folded = folded.append(e)
        assert folded == History(events)
        assert hash(folded) == hash(History(events))

    @given(st.lists(simple_events(), max_size=15), st.lists(simple_events(), max_size=5))
    def test_prefix_relation(self, prefix, suffix):
        a = History(prefix)
        b = History(prefix + suffix)
        assert a.is_prefix_of(b)
        if suffix:
            assert not b.is_prefix_of(a)

    @given(st.lists(simple_events(), max_size=15))
    def test_prefix_of_self(self, events):
        h = History(events)
        assert h.is_prefix_of(h)


class TestCut:
    def test_initial_cut_is_empty(self):
        c = Cut.initial(("p1", "p2"))
        assert len(c["p1"]) == 0
        assert len(c["p2"]) == 0

    def test_missing_history_raises(self):
        with pytest.raises(ValueError):
            Cut(("p1", "p2"), {"p1": History()})

    def test_unknown_process_lookup_raises(self):
        c = Cut.initial(("p1",))
        with pytest.raises(KeyError):
            c.history("p9")

    def test_with_history(self):
        c = Cut.initial(("p1", "p2"))
        h = History([DoEvent("p1", "a")])
        c2 = c.with_history("p1", h)
        assert c2["p1"] == h
        assert c["p1"] == History()  # original untouched

    def test_equality_and_hash(self):
        c1 = Cut.initial(("p1", "p2"))
        c2 = Cut.initial(("p1", "p2"))
        assert c1 == c2
        assert hash(c1) == hash(c2)

    def test_inequality_on_content(self):
        c1 = Cut.initial(("p1",))
        c2 = c1.with_history("p1", History([DoEvent("p1", "a")]))
        assert c1 != c2
