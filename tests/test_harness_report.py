"""Tests for the markdown report generator."""

from repro.harness.report import generate_report, main


class TestGenerateReport:
    def test_subset_report(self):
        text = generate_report(["A14", "A15"])
        assert "# Reproduction report" in text
        assert "2/2 experiments passed" in text
        assert "## A14" in text and "## A15" in text
        assert "| check / metric | value |" in text

    def test_table1_embedded_for_e09(self):
        text = generate_report(["E09"])
        assert "shape matches paper" in text

    def test_case_insensitive_ids(self):
        text = generate_report(["a14"])
        assert "## A14" in text

    def test_main_writes_file(self, tmp_path):
        out = tmp_path / "report.md"
        main(str(out), ["A14"])
        assert out.exists()
        assert "## A14" in out.read_text()
