"""Unit tests for channels: loss, delay, and the R5 fairness budget."""

import random

import pytest

from repro.model.context import ChannelSemantics
from repro.model.events import Message
from repro.sim.network import (
    ChannelConfig,
    FairLossyChannel,
    ReliableChannel,
    UnfairChannel,
    make_channel,
)


def rng():
    return random.Random(0)


class TestReliableChannel:
    def test_never_drops(self):
        ch = ReliableChannel(rng())
        for i in range(50):
            ch.submit("p1", "p2", Message("m", i), tick=0)
        assert ch.dropped_count == 0
        assert ch.in_flight_to(["p2"]) == 50

    def test_delay_bounds(self):
        ch = ReliableChannel(rng(), min_delay=2, max_delay=5)
        ch.submit("p1", "p2", Message("m"), tick=10)
        env = ch.deliverable("p2", 100)[0]
        assert 12 <= env.deliver_at <= 15

    def test_not_deliverable_before_delay(self):
        ch = ReliableChannel(rng(), min_delay=3, max_delay=3)
        ch.submit("p1", "p2", Message("m"), tick=0)
        assert ch.deliverable("p2", 2) == []
        assert len(ch.deliverable("p2", 3)) == 1

    def test_consume_removes(self):
        ch = ReliableChannel(rng(), min_delay=1, max_delay=1)
        ch.submit("p1", "p2", Message("m"), tick=0)
        env = ch.deliverable("p2", 5)[0]
        ch.consume(env)
        assert ch.deliverable("p2", 5) == []
        assert ch.delivered_count == 1

    def test_discard_for_crashed(self):
        ch = ReliableChannel(rng())
        ch.submit("p1", "p2", Message("m"), tick=0)
        ch.discard_for("p2")
        assert ch.in_flight_to(["p2"]) == 0

    def test_bad_delays_rejected(self):
        with pytest.raises(ValueError):
            ReliableChannel(rng(), min_delay=0, max_delay=3)
        with pytest.raises(ValueError):
            ReliableChannel(rng(), min_delay=5, max_delay=3)


class TestFairLossyChannel:
    def test_fairness_budget_forces_acceptance(self):
        # With drop probability 1 the budget is the only reason anything
        # gets through: exactly every (budget+1)-th copy is accepted.
        ch = FairLossyChannel(rng(), drop_prob=0.999999, max_consecutive_drops=3)
        msg = Message("m")
        for i in range(12):
            ch.submit("p1", "p2", msg, tick=i)
        assert ch.in_flight_to(["p2"]) == 3  # copies 4, 8, 12
        assert ch.dropped_count == 9

    def test_budget_per_message_key(self):
        ch = FairLossyChannel(rng(), drop_prob=0.999999, max_consecutive_drops=2)
        for i in range(3):
            ch.submit("p1", "p2", Message("a"), tick=i)
            ch.submit("p1", "p2", Message("b"), tick=i)
        # Each key independently forced on its 3rd copy.
        assert ch.in_flight_to(["p2"]) == 2

    def test_acceptance_resets_streak(self):
        ch = FairLossyChannel(rng(), drop_prob=0.0, max_consecutive_drops=1)
        for i in range(5):
            ch.submit("p1", "p2", Message("m"), tick=i)
        assert ch.in_flight_to(["p2"]) == 5

    def test_zero_budget_accepts_everything(self):
        ch = FairLossyChannel(rng(), drop_prob=0.9, max_consecutive_drops=0)
        for i in range(20):
            ch.submit("p1", "p2", Message("m"), tick=i)
        assert ch.in_flight_to(["p2"]) == 20

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FairLossyChannel(rng(), drop_prob=1.0)
        with pytest.raises(ValueError):
            FairLossyChannel(rng(), drop_prob=-0.1)
        with pytest.raises(ValueError):
            FairLossyChannel(rng(), max_consecutive_drops=-1)

    def test_deliverable_sorted_oldest_first(self):
        ch = FairLossyChannel(rng(), drop_prob=0.0, min_delay=1, max_delay=1)
        for i in range(5):
            ch.submit("p1", "p2", Message("m", i), tick=i)
        ready = ch.deliverable("p2", 100)
        assert [e.message.payload for e in ready] == [0, 1, 2, 3, 4]


class TestUnfairChannel:
    def test_blackhole_swallows_matching(self):
        ch = UnfairChannel(rng(), blackhole=lambda s, r, m: r == "p2")
        ch.submit("p1", "p2", Message("m"), tick=0)
        ch.submit("p1", "p3", Message("m"), tick=0)
        assert ch.in_flight_to(["p2"]) == 0
        assert ch.in_flight_to(["p3"]) == 1
        assert ch.dropped_count == 1

    def test_blackhole_never_relents(self):
        ch = UnfairChannel(rng(), blackhole=lambda s, r, m: True)
        for i in range(100):
            ch.submit("p1", "p2", Message("m"), tick=i)
        assert ch.in_flight_to(["p2"]) == 0


class TestMakeChannel:
    def test_dispatch(self):
        assert isinstance(
            make_channel(ChannelConfig(semantics=ChannelSemantics.RELIABLE), rng()),
            ReliableChannel,
        )
        assert isinstance(
            make_channel(ChannelConfig(semantics=ChannelSemantics.FAIR_LOSSY), rng()),
            FairLossyChannel,
        )
        assert isinstance(
            make_channel(ChannelConfig(semantics=ChannelSemantics.UNFAIR), rng()),
            UnfairChannel,
        )

    def test_unfair_default_blackhole_drops_all(self):
        ch = make_channel(ChannelConfig(semantics=ChannelSemantics.UNFAIR), rng())
        ch.submit("p1", "p2", Message("m"), tick=0)
        assert ch.in_flight_to(["p2"]) == 0

    def test_config_parameters_forwarded(self):
        cfg = ChannelConfig(drop_prob=0.999999, max_consecutive_drops=7)
        ch = make_channel(cfg, rng())
        assert ch.max_consecutive_drops == 7
