"""Tests for repro.explore.shrink: counterexample minimization.

The contract: shrinking is deterministic (equal inputs give equal
witnesses), every accepted step still violates the monitor, and the
result is locally minimal -- no crash removable, no adversarial choice
zeroable, no suffix cuttable.
"""

import pytest

from repro import (
    ExploreSpec,
    UniformityMonitor,
    Violation,
    explore,
    make_process_ids,
    replay_exploration,
    shrink_violation,
    uniform_protocol,
)
from repro.core.protocols import NUDCProcess
from repro.sim.failures import CrashPlan
from repro.workloads.generators import single_action

MONITOR = UniformityMonitor()  # udc


def lossy_spec(**overrides):
    base = dict(
        processes=make_process_ids(3),
        protocol=uniform_protocol(NUDCProcess),
        horizon=6,
        max_failures=1,
        crash_ticks=(1, 3, 5),
        workload=single_action("p1", tick=1),
        lossy=True,
        max_consecutive_drops=1,
    )
    base.update(overrides)
    return ExploreSpec(**base)


@pytest.fixture(scope="module")
def seeded_violation():
    """The drop-based UDC violation: p1 crashes at 5 after both of its
    alpha-copies were deferred at every delivery choice point (under
    drop elision an undelivered copy IS a drop), so no correct process
    ever hears of the action it performed."""
    spec = lossy_spec()
    report = explore(spec, monitors=[MONITOR], cache=None)
    violation = next(v for v in report.violations if v.trace)
    return spec, violation


class TestShrink:
    def test_result_still_violates_and_replays(self, seeded_violation):
        spec, violation = seeded_violation
        result = shrink_violation(spec, violation, monitor=MONITOR)
        assert not MONITOR.check(result.run)
        assert replay_exploration(spec, result.crash_plan, result.trace) == (
            result.run
        )

    def test_deterministic(self, seeded_violation):
        spec, violation = seeded_violation
        first = shrink_violation(spec, violation, monitor=MONITOR)
        second = shrink_violation(spec, violation, monitor=MONITOR)
        assert (first.crash_plan, first.trace) == (
            second.crash_plan,
            second.trace,
        )
        assert first.run == second.run

    def test_locally_minimal(self, seeded_violation):
        spec, violation = seeded_violation
        result = shrink_violation(spec, violation, monitor=MONITOR)
        # no crash is removable
        for pid, _tick in result.crash_plan.crashes:
            reduced = CrashPlan(
                tuple(c for c in result.crash_plan.crashes if c[0] != pid)
            )
            run = replay_exploration(spec, reduced, result.trace)
            assert MONITOR.check(run), f"crash of {pid} was removable"
        # no single adversarial choice is zeroable
        for i, choice in enumerate(result.trace):
            if choice == 0:
                continue
            candidate = result.trace[:i] + (0,) + result.trace[i + 1 :]
            run = replay_exploration(spec, result.crash_plan, candidate)
            assert MONITOR.check(run), f"choice {i} was zeroable"

    def test_minimal_witness_needs_both_drops_and_the_crash(
        self, seeded_violation
    ):
        spec, violation = seeded_violation
        result = shrink_violation(spec, violation, monitor=MONITOR)
        assert result.crashes == {"p1": 5}
        assert result.trace == (1, 1, 1, 1, 1)

    def test_sloppy_trace_shrinks_to_the_same_witness(self, seeded_violation):
        """A witness padded with redundant adversarial junk (unconsumed
        or clamped choices) reduces to the canonical minimal one."""
        spec, violation = seeded_violation
        padded = Violation(
            monitor=violation.monitor,
            verdict=violation.verdict,
            run=replay_exploration(
                spec, violation.crash_plan, violation.trace + (7, 0, 3)
            ),
            crash_plan=violation.crash_plan,
            trace=violation.trace + (7, 0, 3),
        )
        result = shrink_violation(spec, padded, monitor=MONITOR)
        assert result.trace == (1, 1, 1, 1, 1)
        assert result.reductions > 0

    def test_redundant_crash_is_dropped(self):
        """Pass 1: a bystander crash the violation does not need goes."""
        spec = lossy_spec(max_failures=2)
        plan = CrashPlan.of({"p1": 5, "p3": 1})
        # Defer at every delivery choice point; the trace is long enough
        # to keep both alpha-copies undelivered whether or not p3's
        # crash (which removes p3's copy's choice points) is kept.
        trace = (1, 1, 1, 1, 1)
        run = replay_exploration(spec, plan, trace)
        verdict = MONITOR.check(run)
        assert not verdict
        violation = Violation(
            monitor=MONITOR.name,
            verdict=verdict,
            run=run,
            crash_plan=plan,
            trace=trace,
        )
        result = shrink_violation(spec, violation, monitor=MONITOR)
        assert result.crashes == {"p1": 5}
        assert result.reductions >= 1

    def test_non_reproducing_violation_rejected(self, seeded_violation):
        spec, violation = seeded_violation
        healthy = replay_exploration(spec, CrashPlan.none(), ())
        fake = Violation(
            monitor=MONITOR.name,
            verdict=violation.verdict,
            run=healthy,
            crash_plan=CrashPlan.none(),
            trace=(),
        )
        with pytest.raises(ValueError, match="does not reproduce"):
            shrink_violation(spec, fake, monitor=MONITOR)
