"""Overload-protection tests for the serve layer (admission control,
deadlines, idle reaping, graceful drain, client timeouts and retry).

The server under test runs with deliberately tiny
:class:`~repro.serve.server.ServerLimits` so each shedding path fires
deterministically: a monkeypatched slow ``info`` occupies the single
execution slot off-loop (the loop stays responsive, exactly the regime
admission control exists for), and everything else queues, sheds, or
times out against it.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time

import pytest

from repro.knowledge import Crashed
from repro.model.synthetic import synthetic_system
from repro.runtime import RetryPolicy
from repro.serve.client import (
    ServeClient,
    ServeClientError,
    ServeTimeout,
    knows_query,
)
from repro.serve.protocol import decode_message, encode_message
from repro.serve.server import EpistemicServer, ServerLimits
from repro.serve.state import ServeState


class LiveServer:
    """One EpistemicServer on a background thread, torn down via shutdown."""

    def __init__(self, state: ServeState, limits: ServerLimits) -> None:
        self.state = state
        self.server = EpistemicServer(state, limits=limits)
        bound: dict = {}
        started = threading.Event()

        def _run() -> None:
            loop = asyncio.new_event_loop()
            try:
                asyncio.set_event_loop(loop)
                bound["addr"] = loop.run_until_complete(self.server.start())
                started.set()
                loop.run_until_complete(self.server.run())
            finally:
                loop.close()

        self.thread = threading.Thread(target=_run, daemon=True)
        self.thread.start()
        assert started.wait(timeout=30)
        self.host, self.port = bound["addr"]

    def connect(self, **kwargs) -> ServeClient:
        return ServeClient.connect(self.host, self.port, **kwargs)

    def close(self) -> None:
        try:
            with self.connect(timeout=5.0) as client:
                client.shutdown()
        except (ConnectionError, OSError, ServeClientError):
            pass  # a test may have stopped the server already
        self.thread.join(timeout=30)
        assert not self.thread.is_alive()


def _state_with_session() -> ServeState:
    from repro.serve.client import runs_to_arena_payload

    state = ServeState()
    base = synthetic_system(3, 6, seed=5, duration=4)
    state.create("s", runs_to_arena_payload(base.runs))
    return state


def _slow_describe(state: ServeState, seconds: float) -> None:
    """Make ``info`` hold its execution slot off-loop for ``seconds``."""
    original = ServeState.describe

    def slow() -> dict:
        time.sleep(seconds)
        return original(state)

    state.describe = slow  # instance attr shadows the method


def _occupy(live: LiveServer, barrier: threading.Event) -> threading.Thread:
    """A background ``info`` request that pins the single inflight slot."""

    def _run() -> None:
        with live.connect() as client:
            barrier.set()
            client.info()

    thread = threading.Thread(target=_run, daemon=True)
    thread.start()
    assert barrier.wait(timeout=10)
    time.sleep(0.15)  # let the info request reach the executor
    return thread


def test_full_pending_queue_sheds_with_retry_hint() -> None:
    state = _state_with_session()
    _slow_describe(state, 0.8)
    live = LiveServer(
        state,
        ServerLimits(max_inflight=1, max_pending=0, retry_after_ms=70),
    )
    try:
        occupier = _occupy(live, threading.Event())
        with live.connect() as client:
            with pytest.raises(ServeClientError) as excinfo:
                client.query("s", [knows_query("p1", Crashed("p2"), 0, 2)])
            assert excinfo.value.code == "overloaded"
            assert excinfo.value.retry_after_ms == 70
            # Liveness probes bypass admission: ping works *because of*
            # overload protection, not despite it.
            assert client.ping()
        occupier.join(timeout=10)
        assert live.server.metrics["shed"] >= 1
    finally:
        live.close()


def test_admission_timeout_sheds_queued_requests() -> None:
    state = _state_with_session()
    _slow_describe(state, 0.8)
    live = LiveServer(
        state,
        ServerLimits(max_inflight=1, max_pending=4, admission_timeout=0.1),
    )
    try:
        occupier = _occupy(live, threading.Event())
        with live.connect() as client:
            with pytest.raises(ServeClientError) as excinfo:
                client.query("s", [knows_query("p1", Crashed("p2"), 0, 2)])
            assert excinfo.value.code == "overloaded"
            assert "slot" in str(excinfo.value)
        occupier.join(timeout=10)
    finally:
        live.close()


def test_client_retry_recovers_a_shed_request() -> None:
    state = _state_with_session()
    _slow_describe(state, 0.5)
    live = LiveServer(
        state,
        ServerLimits(
            max_inflight=1, max_pending=0, admission_timeout=0.1, retry_after_ms=100
        ),
    )
    try:
        occupier = _occupy(live, threading.Event())
        retry = RetryPolicy(max_attempts=8, backoff_base=0.1, max_backoff=0.5)
        with live.connect(retry=retry) as client:
            [answer] = client.query("s", [knows_query("p1", Crashed("p2"), 0, 2)])
            assert answer["ok"] is True
        occupier.join(timeout=10)
        # The request was shed at least once before the retry landed it.
        assert live.server.metrics["shed"] >= 1
    finally:
        live.close()


def test_deadline_exceeded_isolates_the_rest_of_the_batch() -> None:
    state = _state_with_session()
    live = LiveServer(state, ServerLimits())
    try:
        session = state.sessions["s"]
        original = type(session).run_query

        def slow_query(query, epoch=None):
            time.sleep(0.05)
            return original(session, query, epoch)

        session.run_query = slow_query
        with live.connect() as client:
            queries = [knows_query("p1", Crashed("p2"), 0, 2)] * 6
            response = client.query_response("s", queries, deadline_ms=80)
            results = response["results"]
            # The batch envelope is fine; only the queries that missed
            # the deadline are shed, and every computed answer is kept.
            assert results[0]["ok"] is True
            shed = [r for r in results if not r["ok"]]
            assert shed
            assert {r["error"] for r in shed} == {"deadline-exceeded"}
            assert len(results) == 6
            # The connection survives: a fresh request still answers.
            del session.run_query
            assert client.query("s", queries[:1])[0]["ok"] is True
        assert live.server.metrics["deadline_exceeded"] >= 1
    finally:
        live.close()


def test_deadline_already_expired_sheds_the_whole_request() -> None:
    state = _state_with_session()
    live = LiveServer(state, ServerLimits())
    try:
        with live.connect() as client:
            with pytest.raises(ServeClientError) as excinfo:
                client.query_response(
                    "s", [knows_query("p1", Crashed("p2"), 0, 2)], deadline_ms=0
                )
            assert excinfo.value.code == "deadline-exceeded"
    finally:
        live.close()


def test_server_side_request_deadline_applies_without_client_optin() -> None:
    state = _state_with_session()
    live = LiveServer(state, ServerLimits(request_deadline=0.04))
    try:
        session = state.sessions["s"]
        original = type(session).run_query

        def slow_query(query, epoch=None):
            time.sleep(0.05)
            return original(session, query, epoch)

        session.run_query = slow_query
        with live.connect() as client:
            results = client.query(
                "s", [knows_query("p1", Crashed("p2"), 0, 2)] * 3
            )
            assert [r["ok"] for r in results].count(False) >= 1
    finally:
        live.close()


def test_idle_connections_are_reaped() -> None:
    state = _state_with_session()
    live = LiveServer(state, ServerLimits(idle_timeout=0.2))
    try:
        client = live.connect()
        assert client.ping()
        time.sleep(0.6)
        with pytest.raises((ConnectionError, OSError)):
            client.ping()
        client.close()
        assert live.server.metrics["reaped_idle"] >= 1
    finally:
        live.close()


def test_pipelined_batch_is_answered_through_shutdown() -> None:
    """Graceful-drain regression: requests a client already pipelined
    when shutdown arrives are answered within the drain grace, not
    dropped on the floor."""
    state = _state_with_session()
    live = LiveServer(state, ServerLimits(drain_grace=0.5))
    try:
        pipeliner = live.connect()
        query_line = encode_message(
            {
                "op": "query",
                "system": "s",
                "queries": [knows_query("p1", Crashed("p2"), 0, 2)],
                "id": "pipelined",
            }
        )
        with live.connect() as other:
            other.shutdown()
        time.sleep(0.1)  # the server is now draining...
        pipeliner._sock.sendall(query_line * 3)  # ...and these are in flight
        for _ in range(3):
            response = decode_message(pipeliner._reader.readline())
            assert response["ok"] is True
            assert response["id"] == "pipelined"
            assert response["results"][0]["ok"] is True
        assert pipeliner._reader.readline() == b""  # then a clean close
        pipeliner.close()
    finally:
        live.close()


def test_client_read_timeout_raises_serve_timeout() -> None:
    """A stalled server turns into a typed ServeTimeout, never a hang."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    host, port = listener.getsockname()
    try:
        client = ServeClient.connect(host, port, timeout=0.3)
        t0 = time.monotonic()
        with pytest.raises(ServeTimeout) as excinfo:
            client.ping()
        assert time.monotonic() - t0 < 5.0
        assert excinfo.value.code == "timeout"
        client.close()
    finally:
        listener.close()


def test_limits_validation() -> None:
    with pytest.raises(ValueError):
        ServerLimits(max_inflight=0)
    with pytest.raises(ValueError):
        ServerLimits(max_pending=-1)
    with pytest.raises(ValueError):
        ServerLimits(request_deadline=0)
    with pytest.raises(ValueError):
        ServerLimits(idle_timeout=0)


def test_info_reports_limits_and_metrics() -> None:
    state = _state_with_session()
    live = LiveServer(state, ServerLimits(max_inflight=3, retry_after_ms=25))
    try:
        with live.connect() as client:
            info = client.info()
            server = info["server"]
            assert server["limits"]["max_inflight"] == 3
            assert server["limits"]["retry_after_ms"] == 25
            assert server["metrics"]["requests"] >= 1
            assert server["connections"] >= 1
    finally:
        live.close()
