"""End-to-end tests of the online epistemic query service (repro.serve).

A real :class:`EpistemicServer` runs on a background thread (own event
loop, ephemeral TCP port); the synchronous :class:`ServeClient` drives
it over actual sockets.  Covered: the full op surface (ping/info/
create/load/query/ingest/shutdown), per-query error isolation, the
``complete: false`` surfacing for sampled systems, online ingestion
pinned against a from-scratch rebuild, and graceful degradation on
corrupt cache entries.
"""

from __future__ import annotations

import asyncio
import random
import threading
import warnings

import pytest

from repro.knowledge import Crashed, GroupChecker, Knows, ModelChecker, Not
from repro.model.run import Point
from repro.model.synthetic import synthetic_run, synthetic_system
from repro.model.system import System
from repro.runtime.cache import RunCache
from repro.serve.client import (
    ServeClient,
    ServeClientError,
    ck_query,
    e_query,
    holds_query,
    knows_query,
)
from repro.serve.protocol import WireError, decode_message, encode_message
from repro.serve.server import EpistemicServer
from repro.serve.state import ServeState, SystemSession


@pytest.fixture
def service(tmp_path):
    """A live server over a disk-backed cache; yields (client, cache_dir)."""
    cache_dir = tmp_path / "cache"
    state = ServeState(RunCache(cache_dir))
    server = EpistemicServer(state)
    bound = {}
    started = threading.Event()

    def _run() -> None:
        loop = asyncio.new_event_loop()
        try:
            asyncio.set_event_loop(loop)
            bound["addr"] = loop.run_until_complete(server.start())
            started.set()
            loop.run_until_complete(server.run())
        finally:
            loop.close()

    thread = threading.Thread(target=_run, daemon=True)
    thread.start()
    assert started.wait(timeout=30)
    host, port = bound["addr"]
    client = ServeClient.connect(host, port)
    try:
        yield client, cache_dir
    finally:
        try:
            client.shutdown()
        except (ConnectionError, OSError):
            pass  # a test may have shut the server down already
        client.close()
        thread.join(timeout=30)
        assert not thread.is_alive()


def _sampled_runs():
    return synthetic_system(3, 8, seed=21, duration=5)


def test_ping_info_create_query_cycle(service) -> None:
    client, _ = service
    assert client.ping()
    base = _sampled_runs()
    created = client.create("s", base.runs)
    assert created["runs"] == len(base.runs)
    assert created["complete"] is False

    procs = list(base.processes)
    response = client.query_response(
        "s",
        [
            knows_query(procs[0], Crashed(procs[1]), 0, 3),
            e_query(procs, 2, Crashed(procs[1]), 0, 3),
            ck_query(procs, Crashed(procs[1]), 0, 3),
            holds_query(Not(Crashed(procs[1])), 0, 0),
            {"kind": "known_crashed", "process": procs[0], "run": 0, "time": 4},
            {"kind": "valid", "formula": {"op": "const", "value": True}},
        ],
    )
    assert all(r["ok"] for r in response["results"])
    # Satellite: the incomplete-system warning surfaces structurally.
    assert response["complete"] is False
    assert response["missing_runs"] == 0
    assert response["generation"] == 0

    info = client.info()
    assert info["systems"]["s"]["queries_answered"] == 6


def test_query_answers_match_local_checker(service) -> None:
    client, _ = service
    base = _sampled_runs()
    client.create("s", base.runs)
    procs = list(base.processes)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        checker = ModelChecker(System(base.runs))
        group = GroupChecker(checker)
        for i, run in enumerate(base.runs):
            for m in range(run.duration + 1):
                pt = Point(run, m)
                want = checker.holds(Knows(procs[0], Crashed(procs[1])), pt)
                got = client.query(
                    "s", [knows_query(procs[0], Crashed(procs[1]), i, m)]
                )[0]["result"]
                assert want == got
        want_ck = sorted(
            group.common_knowledge_points(procs, Not(Crashed(procs[1])))
        )
    got_ck = client.query(
        "s",
        [
            {
                "kind": "ck_points",
                "group": procs,
                "formula": {"op": "not", "child": {"op": "crashed", "process": procs[1]}},
            }
        ],
    )[0]["result"]
    assert [tuple(p) for p in got_ck] == want_ck


def test_ingest_differential_against_rebuild(service) -> None:
    client, _ = service
    base = _sampled_runs()
    client.create("s", base.runs)
    rng = random.Random(31)
    extra = [synthetic_run(base.processes, rng, duration=5, alphabet=3) for _ in range(6)]
    result = client.ingest("s", extra)
    assert result["generation"] == 1
    assert result["added"] + result["duplicates"] == len(extra)
    assert result["runs"] == len(base.runs) + result["added"]

    seen = set(base.runs)
    fresh = []
    for run in extra:
        if run not in seen:
            seen.add(run)
            fresh.append(run)
    procs = list(base.processes)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        rebuilt = System(base.runs + tuple(fresh))
        checker = ModelChecker(rebuilt)
        group = GroupChecker(checker)
        for i, run in enumerate(rebuilt.runs):
            for m in range(run.duration + 1):
                pt = Point(run, m)
                for p in procs:
                    want = checker.holds(Knows(p, Crashed(procs[1])), pt)
                    got = client.query(
                        "s", [knows_query(p, Crashed(procs[1]), i, m)]
                    )[0]["result"]
                    assert want == got, (i, m, p)
        want_ck = sorted(group.common_knowledge_points(procs, Crashed(procs[1])))
    got_ck = client.query(
        "s",
        [{"kind": "ck_points", "group": procs, "formula": {"op": "crashed", "process": procs[1]}}],
    )[0]["result"]
    assert [tuple(p) for p in got_ck] == want_ck


def test_ingest_duplicates_are_dropped(service) -> None:
    client, _ = service
    base = _sampled_runs()
    client.create("s", base.runs)
    result = client.ingest("s", base.runs[:3])
    assert result["added"] == 0
    assert result["duplicates"] == 3
    assert result["generation"] == 0  # nothing changed, no new system


def test_per_query_errors_do_not_fail_the_batch(service) -> None:
    client, _ = service
    base = _sampled_runs()
    client.create("s", base.runs)
    results = client.query(
        "s",
        [
            {"kind": "knows", "process": "p1", "formula": {"op": "crashed", "process": "p2"}, "run": 0, "time": 0},
            {"kind": "nope"},
            {"kind": "knows", "process": "zz", "formula": {"op": "crashed", "process": "p2"}, "run": 0, "time": 0},
            {"kind": "knows", "process": "p1", "formula": {"op": "wat"}, "run": 0, "time": 0},
            {"kind": "knows", "process": "p1", "formula": {"op": "crashed", "process": "p2"}, "run": 99, "time": 0},
            "not even an object",
        ],
    )
    assert results[0]["ok"] is True
    assert [r["ok"] for r in results[1:]] == [False] * 5
    assert results[1]["error"] == "bad-request"
    assert results[2]["error"] == "bad-request"
    assert results[3]["error"] == "bad-formula"
    assert results[4]["error"] == "bad-point"
    assert results[5]["error"] == "bad-request"


def test_complete_and_missing_runs_surface(service) -> None:
    client, _ = service
    base = _sampled_runs()
    client.create("partial", base.runs, complete=False, missing_runs=4)
    response = client.query_response(
        "partial", [knows_query("p1", Crashed("p2"), 0, 2)]
    )
    assert response["complete"] is False
    assert response["missing_runs"] == 4
    client.create("full", base.runs, complete=True)
    response = client.query_response(
        "full", [knows_query("p1", Crashed("p2"), 0, 2)]
    )
    assert response["complete"] is True


def test_load_from_cache_and_corrupt_degradation(service, tmp_path) -> None:
    client, cache_dir = service
    # Seed the server's cache directory with a real v4 exploration entry.
    writer = RunCache(cache_dir)
    runs = _sampled_runs().runs
    from repro.explore.reduction import ExploreStats

    writer.put_exploration("abc123", runs, ExploreStats())
    (cache_dir / "explore-bad999.json").write_text("{torn", encoding="utf-8")

    loaded = client.load("explored", "abc123")
    assert loaded["runs"] == len(runs)
    assert loaded["complete"] is True  # cache stores only exhaustive sets
    assert "abc123" in client.info()["cache_digests"]

    with pytest.raises(ServeClientError) as excinfo:
        client.load("bad", "bad999")
    assert excinfo.value.code == "corrupt-entry"

    with pytest.raises(ServeClientError) as excinfo:
        client.load("ghost", "nope404")
    assert excinfo.value.code == "not-found"


def test_unknown_system_and_duplicate_create(service) -> None:
    client, _ = service
    with pytest.raises(ServeClientError) as excinfo:
        client.query("ghost", [{"kind": "holds"}])
    assert excinfo.value.code == "unknown-system"
    base = _sampled_runs()
    client.create("dup", base.runs)
    with pytest.raises(ServeClientError) as excinfo:
        client.create("dup", base.runs)
    assert excinfo.value.code == "duplicate-system"


def test_malformed_lines_and_id_echo(service) -> None:
    client, _ = service
    raw = client.request_raw({"op": "ping", "id": "tag-7"})
    assert raw["id"] == "tag-7"
    client._sock.sendall(b"this is not json\n")
    bad = decode_message(client._reader.readline())
    assert bad["ok"] is False and bad["error"] == "bad-json"
    # The connection survives a bad line.
    assert client.ping()


def test_shutdown_is_clean(service) -> None:
    client, _ = service
    base = _sampled_runs()
    client.create("s", base.runs)
    client.shutdown()  # fixture teardown asserts the thread exits


# -- protocol / state unit coverage (no sockets) ----------------------------


def test_protocol_codec_round_trip() -> None:
    payload = {"op": "query", "queries": [{"kind": "holds"}], "id": 3}
    assert decode_message(encode_message(payload).rstrip(b"\n")) == payload
    with pytest.raises(WireError) as excinfo:
        decode_message(b"\x80 junk")
    assert excinfo.value.code == "bad-json"
    with pytest.raises(WireError) as excinfo:
        decode_message(b"[1, 2]")
    assert excinfo.value.code == "bad-request"


def test_session_formula_interning_keeps_caches_hot() -> None:
    base = _sampled_runs()
    session = SystemSession("s", System(base.runs))
    wire = {"kind": "knows", "process": "p1", "formula": {"op": "crashed", "process": "p2"}, "run": 0, "time": 2}
    session.run_query(wire)
    misses = session.system.stats.local_cache_misses
    session.run_query(dict(wire))  # identical content, fresh dict
    assert session.system.stats.local_cache_misses == misses
    assert session.system.stats.local_cache_hits > 0


def test_state_claim_release_cycle() -> None:
    state = ServeState()
    name = state.claim("pending")
    with pytest.raises(WireError) as excinfo:
        state.claim("pending")
    assert excinfo.value.code == "duplicate-system"
    state.release(name)
    assert state.claim("pending") == "pending"
