"""Tests for locality / stability / failure-insensitivity / A4 analyses."""

from repro.knowledge.analysis import (
    a4_instance_holds,
    insensitive_to_failure,
    is_local,
    is_stable,
    knowledge_is_veridical,
)
from repro.knowledge.formulas import (
    Box,
    Crashed,
    Diamond,
    Inited,
    Knows,
    Not,
    Sent,
)
from repro.knowledge.semantics import ModelChecker
from repro.model.events import (
    CrashEvent,
    InitEvent,
    Message,
    ReceiveEvent,
    SendEvent,
)
from repro.model.run import Point, Run
from repro.model.system import System

PROCS = ("p1", "p2", "p3")
MSG = Message("m")


def system():
    learn = Run(
        PROCS,
        {
            "p1": [(4, ReceiveEvent("p1", "p2", MSG))],
            "p2": [(1, InitEvent("p2", ("p2", "x"))), (3, SendEvent("p2", "p1", MSG))],
            "p3": [(2, CrashEvent("p3"))],
        },
        duration=8,
    )
    quiet = Run(
        PROCS,
        {
            "p1": [],
            "p2": [(1, InitEvent("p2", ("p2", "x"))), (3, SendEvent("p2", "p1", MSG))],
            "p3": [],
        },
        duration=8,
    )
    silent = Run(PROCS, {"p1": [], "p2": [], "p3": []}, duration=8)
    # p3 crashes but nothing else happens: without this run, p3's crash
    # would only ever co-occur with p2's init, and crashing would
    # (spuriously) teach p3 about the init (A1-style independence needs
    # the failure pattern to vary over the rest of the behaviour).
    silent_crash = Run(
        PROCS, {"p1": [], "p2": [], "p3": [(2, CrashEvent("p3"))]}, duration=8
    )
    return System([learn, quiet, silent, silent_crash])


class TestLocality:
    def test_history_primitives_local(self):
        mc = ModelChecker(system())
        assert is_local(mc, Inited("p2", ("p2", "x")), "p2")
        assert is_local(mc, Crashed("p3"), "p3")

    def test_remote_facts_not_local(self):
        mc = ModelChecker(system())
        assert not is_local(mc, Crashed("p3"), "p1")

    def test_knowledge_always_local_to_knower(self):
        mc = ModelChecker(system())
        f = Knows("p1", Crashed("p3"))
        assert is_local(mc, f, "p1")


class TestStability:
    def test_event_facts_stable(self):
        mc = ModelChecker(system())
        assert is_stable(mc, Crashed("p3"))
        assert is_stable(mc, Inited("p2", ("p2", "x")))
        assert is_stable(mc, Sent("p2", "p1", MSG))

    def test_negation_not_stable(self):
        mc = ModelChecker(system())
        assert not is_stable(mc, Not(Crashed("p3")))

    def test_box_stable_diamond_not_antistable(self):
        mc = ModelChecker(system())
        assert is_stable(mc, Box(Not(Crashed("p1"))))
        # Diamond of a stable formula happens to be stable too.
        assert is_stable(mc, Diamond(Crashed("p3")))

    def test_knowledge_of_stable_stable(self):
        mc = ModelChecker(system())
        assert is_stable(mc, Knows("p1", Crashed("p3")))


class TestInsensitivity:
    def test_a3_knowledge_of_init_insensitive(self):
        # A3: K_q(init_p(alpha)) is insensitive to failure by q --
        # crashing does not teach p3 anything about p2's initiation.
        # (Definition 3.3 applies to formulas local to q, which
        # K_p3(...) is; the bare Inited is local to p2, not p3.)
        mc = ModelChecker(system())
        assert insensitive_to_failure(
            mc, Knows("p3", Inited("p2", ("p2", "x"))), "p3"
        )

    def test_crash_formula_is_sensitive(self):
        # crash(p3) itself flips exactly when crash_p3 is appended.
        mc = ModelChecker(system())
        assert not insensitive_to_failure(mc, Crashed("p3"), "p3")


class TestA4Instance:
    def test_holds_when_ignorant_point_exists(self):
        mc = ModelChecker(system())
        phi = Inited("p2", ("p2", "x"))
        # At time 0 of the learn run nobody (except p2) knows phi; the
        # silent run provides the not-phi point with matching histories.
        pt = Point(mc.system.runs[0], 0)
        group = frozenset({"p1", "p3"})
        assert a4_instance_holds(mc, phi, pt, group)

    def test_fails_without_witness_point(self):
        # A system whose every run has phi true from the start: no
        # (r', m) with ~phi exists.
        always = Run(
            PROCS,
            {
                "p1": [],
                "p2": [(1, InitEvent("p2", ("p2", "x")))],
                "p3": [],
            },
            duration=6,
        )
        mc = ModelChecker(System([always]))
        phi = Inited("p2", ("p2", "x"))
        pt = Point(always, 3)
        group = frozenset({"p1", "p3"})
        assert not a4_instance_holds(mc, phi, pt, group)

    def test_rejects_knowing_group(self):
        mc = ModelChecker(system())
        phi = Inited("p2", ("p2", "x"))
        pt = Point(mc.system.runs[0], 3)
        import pytest

        with pytest.raises(ValueError):
            a4_instance_holds(mc, phi, pt, frozenset({"p2"}))


class TestVeridicalityHelper:
    def test_arbitrary_formula(self):
        mc = ModelChecker(system())
        assert knowledge_is_veridical(mc, Crashed("p3"), "p1")
        assert knowledge_is_veridical(mc, Diamond(Crashed("p3")), "p2")
