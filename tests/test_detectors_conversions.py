"""Tests for detector conversions (Props 2.1, 2.2; Section 4 equivalences)."""

from repro.core.properties import udc_holds
from repro.core.protocols import StrongFDUDCProcess
from repro.detectors.conversions import (
    GOSSIP,
    SuspicionGossip,
    convert_generalized_to_perfect,
    convert_impermanent_to_permanent,
    convert_perfect_to_n_useful,
    convert_system_impermanent_to_permanent,
    convert_weak_to_strong,
    with_gossip,
)
from repro.detectors.properties import (
    generalized_strong_accuracy,
    impermanent_strong_completeness,
    is_t_useful,
    strong_accuracy,
    strong_completeness,
    weak_accuracy,
)
from repro.detectors.standard import (
    ImpermanentStrongOracle,
    ImpermanentWeakOracle,
    WeakOracle,
)
from repro.model.context import make_process_ids
from repro.model.events import (
    CrashEvent,
    GeneralizedSuspicion,
    StandardSuspicion,
    SuspectEvent,
)
from repro.model.run import Run, validate_run
from repro.model.system import System
from repro.sim.executor import Executor
from repro.sim.failures import CrashPlan
from repro.sim.process import uniform_protocol
from repro.workloads.generators import post_crash_workload, single_action

PROCS3 = ("p1", "p2", "p3")
PROCS = make_process_ids(4)


def sus(p, suspects, derived=False):
    return SuspectEvent(p, StandardSuspicion(frozenset(suspects)), derived=derived)


class TestTransformStructure:
    """The conversions are run transformations in the Section 2.2 sense."""

    def base_run(self):
        return Run(
            PROCS3,
            {
                "p3": [(2, CrashEvent("p3"))],
                "p1": [(5, sus("p1", {"p3"})), (9, sus("p1", set()))],
                "p2": [],
            },
            duration=12,
        )

    def test_timeline_doubles(self):
        out = convert_impermanent_to_permanent(self.base_run())
        assert out.duration == 2 * 12 + 1

    def test_original_events_preserved_in_order(self):
        out = convert_impermanent_to_permanent(self.base_run())
        originals = [
            e for e in out.events("p1") if not getattr(e, "derived", False)
        ]
        assert originals == [e for e in self.base_run().events("p1")]

    def test_original_event_times_doubled(self):
        out = convert_impermanent_to_permanent(self.base_run())
        assert out.crash_time("p3") == 4

    def test_derived_events_at_odd_times(self):
        out = convert_impermanent_to_permanent(self.base_run())
        for p in PROCS3:
            for t, e in out.timeline(p):
                if getattr(e, "derived", False):
                    assert t % 2 == 1

    def test_no_derived_events_after_crash(self):
        out = convert_impermanent_to_permanent(self.base_run())
        crash_t = out.crash_time("p3")
        assert all(t <= crash_t for t, _ in out.timeline("p3"))


class TestImpermanentToPermanent:
    def test_union_semantics(self):
        r = Run(
            PROCS3,
            {
                "p2": [(2, CrashEvent("p2"))],
                "p3": [(3, CrashEvent("p3"))],
                "p1": [
                    (5, sus("p1", {"p2"})),
                    (8, sus("p1", {"p3"})),  # p2 dropped: impermanent
                ],
            },
            duration=12,
        )
        assert not strong_completeness(r)
        out = convert_impermanent_to_permanent(r)
        # The derived stream accumulates: final report is {p2, p3}.
        final = out.final_history("p1").latest_suspicion(derived=True)
        assert final.report.suspects == frozenset({"p2", "p3"})
        assert strong_completeness(out, derived=True)

    def test_accuracy_preserved(self):
        # Executor-level check: impermanent-strong oracle -> conversion
        # yields strong completeness, weak accuracy intact.
        plan = CrashPlan.of({"p3": 5})
        run = Executor(
            PROCS,
            uniform_protocol(StrongFDUDCProcess),
            crash_plan=plan,
            workload=single_action("p1", tick=1),
            detector=ImpermanentStrongOracle(retract_after=4),
            seed=0,
        ).run()
        assert impermanent_strong_completeness(run)
        assert not strong_completeness(run)
        out = convert_impermanent_to_permanent(run)
        assert strong_completeness(out, derived=True)
        assert weak_accuracy(out, derived=True)

    def test_system_level(self):
        plan = CrashPlan.of({"p3": 5})
        runs = [
            Executor(
                PROCS,
                uniform_protocol(StrongFDUDCProcess),
                crash_plan=plan,
                workload=single_action("p1", tick=1),
                detector=ImpermanentStrongOracle(retract_after=4),
                seed=s,
            ).run()
            for s in range(2)
        ]
        converted = convert_system_impermanent_to_permanent(System(runs))
        assert all(strong_completeness(r, derived=True) for r in converted)


class TestWeakToStrong:
    def gossiped_run(self, oracle, seed=0, plan=None):
        plan = plan or CrashPlan.of({"p4": 5})
        workload = single_action("p1", tick=1) + post_crash_workload(
            PROCS, plan, actions_per_survivor=1
        )
        return Executor(
            PROCS,
            with_gossip(uniform_protocol(StrongFDUDCProcess)),
            crash_plan=plan,
            workload=workload,
            detector=oracle,
            seed=seed,
        ).run()

    def test_gossip_messages_in_run(self):
        run = self.gossiped_run(WeakOracle())
        gossiped = any(
            getattr(e, "message", None) is not None and e.message.kind == GOSSIP
            for p in PROCS
            for e in run.events(p)
        )
        assert gossiped

    def test_weak_becomes_strong(self):
        run = self.gossiped_run(WeakOracle())
        assert not strong_completeness(run)  # the original oracle is weak
        out = convert_weak_to_strong(run)
        assert strong_completeness(out, derived=True)

    def test_accuracy_preserved(self):
        run = self.gossiped_run(WeakOracle())
        out = convert_weak_to_strong(run)
        assert weak_accuracy(out, derived=True)
        # The weak oracle only reports actual crashes, so the gossip
        # union is even strongly accurate here.
        assert strong_accuracy(out, derived=True)

    def test_impermanent_weak_full_pipeline(self):
        # Cor 3.2's pipeline: impermanent-weak --gossip--> strong
        # completeness (the remembered union is automatically permanent).
        run = self.gossiped_run(ImpermanentWeakOracle(retract_after=4))
        out = convert_impermanent_to_permanent(convert_weak_to_strong(run))
        assert strong_completeness(out, derived=True)
        assert weak_accuracy(out, derived=True)

    def test_udc_attained_with_gossip(self):
        for seed in range(3):
            run = self.gossiped_run(ImpermanentWeakOracle(retract_after=4), seed)
            assert udc_holds(run)

    def test_converted_run_still_validates(self):
        run = self.gossiped_run(WeakOracle())
        out = convert_weak_to_strong(run)
        validate_run(out, check_r5=False)


class TestGeneralizedPerfectEquivalence:
    def gen_run(self):
        def g(p, suspects, k):
            return SuspectEvent(p, GeneralizedSuspicion(frozenset(suspects), k))

        return Run(
            PROCS3,
            {
                "p3": [(2, CrashEvent("p3"))],
                "p1": [(5, g("p1", {"p3"}, 1)), (7, g("p1", {"p2", "p3"}, 1))],
                "p2": [(6, g("p2", {"p3"}, 1))],
            },
            duration=10,
        )

    def test_exact_reports_become_standard(self):
        out = convert_generalized_to_perfect(self.gen_run())
        # Only the |S| = k reports pin crashes: ({p3}, 1) does, the
        # ({p2, p3}, 1) report does not.
        final = out.final_history("p1").latest_suspicion(derived=True)
        assert final.report.suspects == frozenset({"p3"})
        assert strong_accuracy(out, derived=True)
        assert strong_completeness(out, derived=True)

    def test_perfect_to_n_useful(self):
        r = Run(
            PROCS3,
            {
                "p3": [(2, CrashEvent("p3"))],
                "p1": [(5, sus("p1", {"p3"}))],
                "p2": [(6, sus("p2", {"p3"}))],
            },
            duration=10,
        )
        out = convert_perfect_to_n_useful(r)
        assert generalized_strong_accuracy(out, derived=True)
        # n-useful = (n-1)-useful completeness for the derived stream.
        assert is_t_useful(out, len(PROCS3) - 1, derived=True)

    def test_round_trip(self):
        # perfect -> n-useful -> perfect preserves the suspicion content.
        r = Run(
            PROCS3,
            {
                "p3": [(2, CrashEvent("p3"))],
                "p1": [(5, sus("p1", {"p3"}))],
                "p2": [],
            },
            duration=10,
        )
        mid = convert_perfect_to_n_useful(r)
        # Strip derived flag by rebuilding a run whose ORIGINAL events
        # are the derived generalized reports.
        rebuilt = Run(
            PROCS3,
            {
                p: [
                    (t, SuspectEvent(e.process, e.report))
                    for t, e in mid.timeline(p)
                    if isinstance(e, SuspectEvent) and e.derived
                ]
                + [
                    (t, e)
                    for t, e in mid.timeline(p)
                    if not isinstance(e, SuspectEvent)
                ]
                for p in PROCS3
            },
            duration=mid.duration,
        )
        back = convert_generalized_to_perfect(rebuilt)
        final = back.final_history("p1").latest_suspicion(derived=True)
        assert final.report.suspects == frozenset({"p3"})


class TestGossipWrapperUnit:
    def test_delegation(self):
        from repro.sim.process import ProcessEnv, ProtocolProcess

        calls = []

        class Probe(ProtocolProcess):
            def on_init(self, action):
                calls.append(("init", action))

            def on_receive(self, sender, message):
                calls.append(("recv", message.kind))

            def on_suspect(self, report):
                calls.append(("suspect", report.suspects))

        env = ProcessEnv("p1", PROCS3)
        wrapper = SuspicionGossip("p1", env, Probe("p1", env))
        wrapper.on_init("a")
        wrapper.on_suspect(StandardSuspicion(frozenset({"p3"})))
        from repro.model.events import Message

        wrapper.on_receive("p2", Message(GOSSIP, frozenset({"p2"})))
        wrapper.on_receive("p2", Message("app", None))
        kinds = [c[0] for c in calls]
        assert kinds == ["init", "suspect", "suspect", "recv"]
        # Gossip forwarded as a suspicion, not as an app message.
        assert calls[2] == ("suspect", frozenset({"p2"}))

    def test_gossip_enqueues_sends(self):
        from repro.sim.process import ProcessEnv, ProtocolProcess

        env = ProcessEnv("p1", PROCS3)
        wrapper = SuspicionGossip(
            "p1", env, ProtocolProcess("p1", env), resend_rounds=2
        )
        wrapper.on_suspect(StandardSuspicion(frozenset({"p3"})))
        env.now = 100
        wrapper.on_tick()
        gossip_sends = [e for e in env.outbox if e.message.kind == GOSSIP]
        assert len(gossip_sends) == 2  # one per other process
        assert wrapper.wants_to_act()

    def test_empty_suspicion_not_gossiped(self):
        from repro.sim.process import ProcessEnv, ProtocolProcess

        env = ProcessEnv("p1", PROCS3)
        wrapper = SuspicionGossip("p1", env, ProtocolProcess("p1", env))
        wrapper.on_suspect(StandardSuspicion(frozenset()))
        env.now = 100
        wrapper.on_tick()
        assert not env.outbox
