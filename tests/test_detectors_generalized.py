"""Tests for generalized (S, k) detectors and t-usefulness (Section 4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.protocols import GeneralizedFDUDCProcess
from repro.detectors.generalized import (
    GeneralizedOracle,
    TrivialSubsetOracle,
    is_t_useful_event,
    max_padding,
)
from repro.detectors.properties import (
    generalized_impermanent_strong_completeness,
    generalized_strong_accuracy,
)
from repro.model.context import make_process_ids
from repro.model.events import GeneralizedSuspicion, SuspectEvent
from repro.sim.executor import Executor
from repro.sim.failures import CrashPlan
from repro.sim.process import uniform_protocol
from repro.workloads.generators import single_action

PROCS = make_process_ids(5)
N = len(PROCS)


def run_with(detector, t, plan, seed=0):
    return Executor(
        PROCS,
        uniform_protocol(GeneralizedFDUDCProcess, t=t),
        crash_plan=plan,
        workload=single_action("p1", tick=1),
        detector=detector,
        seed=seed,
    ).run()


class TestTUsefulDefinition:
    def test_paper_conditions(self):
        faulty = frozenset({"p4", "p5"})
        # (a) F not in S => not useful.
        assert not is_t_useful_event(
            GeneralizedSuspicion(frozenset({"p4"}), 1), faulty, N, 2
        )
        # All three conditions met.
        assert is_t_useful_event(
            GeneralizedSuspicion(frozenset({"p4", "p5"}), 2), faulty, N, 2
        )
        # (b) inequality fails: |S| too big for the count.
        assert not is_t_useful_event(
            GeneralizedSuspicion(frozenset({"p3", "p4", "p5"}), 0), faulty, N, 2
        )

    def test_trivial_report_useful_iff_small_t(self):
        # (S, 0) with |S| = t: useful iff n - t > t, i.e. t < n/2.
        faulty = frozenset({"p5"})
        small = GeneralizedSuspicion(frozenset({"p4", "p5"}), 0)  # t = 2 < 2.5
        assert is_t_useful_event(small, faulty, N, 2)
        big = GeneralizedSuspicion(frozenset({"p3", "p4", "p5"}), 0)  # t = 3
        assert not is_t_useful_event(big, faulty, N, 3)

    def test_n_useful_forces_exact_sets(self):
        # For t >= n-1, min(t, n-1) = n-1 and a useful (S, k) needs
        # k > |S| - 1, i.e. k = |S| (the paper's observation).
        faulty = frozenset({"p1", "p2", "p3", "p4"})
        assert is_t_useful_event(
            GeneralizedSuspicion(faulty, 4), faulty, N, N - 1
        )
        assert not is_t_useful_event(
            GeneralizedSuspicion(faulty, 3), faulty, N, N - 1
        )

    @given(
        st.integers(0, N),
        st.sets(st.sampled_from(PROCS), max_size=N),
    )
    def test_usefulness_monotone_in_k(self, t, suspects):
        """If (S, k) is useful, (S, k') for k <= k' <= |S| is too."""
        s = frozenset(suspects)
        faulty = s  # choose F = S so (a) holds
        useful_ks = [
            k
            for k in range(len(s) + 1)
            if is_t_useful_event(GeneralizedSuspicion(s, k), faulty, N, t)
        ]
        if useful_ks:
            lo = min(useful_ks)
            assert useful_ks == list(range(lo, len(s) + 1))


class TestMaxPadding:
    def test_values(self):
        assert max_padding(5, 2) == 2  # pad < n - t = 3
        assert max_padding(5, 4) == 0
        assert max_padding(5, 5) == 0  # min(t, n-1) = 4
        assert max_padding(4, 0) == 3


class TestGeneralizedOracle:
    def test_accuracy_and_completeness(self):
        plan = CrashPlan.of({"p4": 5, "p5": 9})
        for seed in range(3):
            run = run_with(GeneralizedOracle(2, padding=1), 2, plan, seed)
            assert generalized_strong_accuracy(run)
            assert generalized_impermanent_strong_completeness(run, 2)

    def test_padding_clamped(self):
        plan = CrashPlan.of({"p5": 5})
        run = run_with(GeneralizedOracle(2, padding=50), 2, plan)
        reports = [
            e.report
            for p in PROCS
            for e in run.events(p)
            if isinstance(e, SuspectEvent)
        ]
        assert reports
        # |S| = |F| + clamped padding <= 1 + max_padding(5, 2) = 3.
        assert all(len(r.suspects) <= 3 for r in reports)

    def test_unclamped_padding_breaks_usefulness(self):
        plan = CrashPlan.of({"p5": 5})
        run = run_with(
            GeneralizedOracle(2, padding=3, clamp_padding=False), 2, plan
        )
        assert generalized_strong_accuracy(run)  # accuracy survives
        assert not generalized_impermanent_strong_completeness(run, 2)

    def test_counts_track_actual_crashes(self):
        plan = CrashPlan.of({"p4": 5, "p5": 20})
        run = run_with(GeneralizedOracle(2), 2, plan)
        for p in sorted(run.correct()):
            counts = [
                (t, e.report.count)
                for t, e in run.timeline(p)
                if isinstance(e, SuspectEvent)
            ]
            # Counts are non-decreasing and end at |F|.
            values = [k for _, k in counts]
            assert values == sorted(values)
            assert values[-1] == 2

    def test_negative_t_rejected(self):
        with pytest.raises(ValueError):
            GeneralizedOracle(-1)


class TestTrivialSubsetOracle:
    def test_emits_every_t_subset_once(self):
        from itertools import combinations

        plan = CrashPlan.none()
        run = run_with(TrivialSubsetOracle(2), 2, plan)
        for p in PROCS:
            reports = [
                e.report
                for e in run.events(p)
                if isinstance(e, SuspectEvent)
            ]
            subsets = [r.suspects for r in reports]
            expected = [frozenset(c) for c in combinations(sorted(PROCS), 2)]
            assert subsets == expected
            assert all(r.count == 0 for r in reports)

    def test_vacuously_accurate(self):
        plan = CrashPlan.of({"p5": 5})
        run = run_with(TrivialSubsetOracle(2), 2, plan)
        assert generalized_strong_accuracy(run)

    def test_useful_for_small_t(self):
        plan = CrashPlan.of({"p4": 5, "p5": 7})
        run = run_with(TrivialSubsetOracle(2), 2, plan)
        assert generalized_impermanent_strong_completeness(run, 2)

    def test_useless_for_large_t(self):
        plan = CrashPlan.of({"p5": 5})
        run = run_with(TrivialSubsetOracle(3), 3, plan)
        assert not generalized_impermanent_strong_completeness(run, 3)
