"""Unit tests for the detector base layer: Suspects_p(r, m), suspicion
histories, and the eventually-permanently decision procedure."""

import pytest

from repro.detectors.base import (
    IntervalOracle,
    ever_suspected,
    permanently_suspected_from,
    suspects_at,
    suspicion_history,
)
from repro.model.events import (
    GeneralizedSuspicion,
    StandardSuspicion,
    SuspectEvent,
)
from repro.model.history import History
from repro.model.run import Run

PROCS = ("p1", "p2", "p3")


def sus(p, suspects, derived=False):
    return SuspectEvent(p, StandardSuspicion(frozenset(suspects)), derived=derived)


class TestSuspectsAt:
    def test_most_recent_report(self):
        h = History([sus("p1", {"p2"}), sus("p1", {"p3"})])
        assert suspects_at(h) == frozenset({"p3"})

    def test_empty_when_no_reports(self):
        assert suspects_at(History()) == frozenset()

    def test_generalized_report_rejected(self):
        h = History(
            [SuspectEvent("p1", GeneralizedSuspicion(frozenset({"p2"}), 1))]
        )
        with pytest.raises(TypeError, match="not standard"):
            suspects_at(h)

    def test_derived_stream(self):
        h = History([sus("p1", {"p2"}), sus("p1", {"p3"}, derived=True)])
        assert suspects_at(h) == frozenset({"p2"})
        assert suspects_at(h, derived=True) == frozenset({"p3"})


class TestSuspicionHistory:
    def run(self):
        return Run(
            PROCS,
            {
                "p1": [
                    (2, sus("p1", {"p2"})),
                    (5, sus("p1", set())),
                    (7, sus("p1", {"p2", "p3"})),
                ],
                "p2": [],
                "p3": [],
            },
            duration=10,
        )

    def test_all_reports_in_order(self):
        reports = list(suspicion_history(self.run(), "p1"))
        assert [t for t, _ in reports] == [2, 5, 7]

    def test_ever_suspected(self):
        assert ever_suspected(self.run(), "p1", "p2")
        assert ever_suspected(self.run(), "p1", "p3")
        assert not ever_suspected(self.run(), "p2", "p1")


class TestPermanentlySuspectedFrom:
    def test_never_suspected(self):
        r = Run(PROCS, {"p1": [], "p2": [], "p3": []}, duration=8)
        assert permanently_suspected_from(r, "p1", "p2") is None

    def test_suspected_from_report_time(self):
        r = Run(
            PROCS,
            {"p1": [(3, sus("p1", {"p2"}))], "p2": [], "p3": []},
            duration=8,
        )
        assert permanently_suspected_from(r, "p1", "p2") == 3

    def test_retraction_resets(self):
        r = Run(
            PROCS,
            {
                "p1": [
                    (3, sus("p1", {"p2"})),
                    (5, sus("p1", set())),
                    (7, sus("p1", {"p2"})),
                ],
                "p2": [],
                "p3": [],
            },
            duration=10,
        )
        assert permanently_suspected_from(r, "p1", "p2") == 7

    def test_final_retraction_means_not_permanent(self):
        r = Run(
            PROCS,
            {
                "p1": [(3, sus("p1", {"p2"})), (6, sus("p1", set()))],
                "p2": [],
                "p3": [],
            },
            duration=10,
        )
        assert permanently_suspected_from(r, "p1", "p2") is None

    def test_superset_reports_keep_permanence(self):
        r = Run(
            PROCS,
            {
                "p1": [(3, sus("p1", {"p2"})), (6, sus("p1", {"p2", "p3"}))],
                "p2": [],
                "p3": [],
            },
            duration=10,
        )
        assert permanently_suspected_from(r, "p1", "p2") == 3
        assert permanently_suspected_from(r, "p1", "p3") == 6


class TestIntervalOracle:
    class Dummy(IntervalOracle):
        def poll(self, pid, tick, truth, rng):
            if not self.due(pid, tick):
                return None
            self.mark(pid, tick)
            return StandardSuspicion(frozenset())

    def test_interval_gating(self):
        oracle = self.Dummy(interval=4, start_tick=2)
        assert not oracle.due("p1", 1)  # before start
        assert oracle.due("p1", 2)
        oracle.mark("p1", 2)
        assert not oracle.due("p1", 5)
        assert oracle.due("p1", 6)

    def test_per_process_independence(self):
        oracle = self.Dummy(interval=4)
        oracle.mark("p1", 10)
        assert oracle.due("p2", 10)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            self.Dummy(interval=0)

    def test_fresh_resets_marks(self):
        oracle = self.Dummy(interval=4)
        oracle.mark("p1", 10)
        clone = oracle.fresh()
        assert clone.due("p1", 10)
        assert not oracle.due("p1", 10)
