"""Formula AST <-> JSON wire codec: round trips preserve kernel verdicts.

A hypothesis strategy generates random formula trees over the
data-defined fragment; the property pins (1) JSON-level idempotence
(encode(decode(encode(f))) == encode(f)) and (2) *semantic* exactness:
the decoded formula produces identical model-checker verdicts at every
point of a synthetic system.  Atom (an opaque Python callable) has no
wire form and must refuse to encode; malformed wire payloads must
refuse to decode.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.knowledge import (
    And,
    Box,
    Crashed,
    Diamond,
    Did,
    FALSE,
    Implies,
    Inited,
    Knows,
    ModelChecker,
    Not,
    Or,
    Received,
    Sent,
    TRUE,
    formula_from_jsonable,
    formula_to_jsonable,
    formula_wire_key,
)
from repro.knowledge.formulas import Atom
from repro.model.events import Message
from repro.model.run import Point
from repro.model.synthetic import synthetic_system

PROCS = ("p1", "p2", "p3")

_processes = st.sampled_from(PROCS)
_actions = st.sampled_from(["init", "ack", ("vote", 1), ("vote", 2)])
_messages = st.one_of(
    st.none(),
    st.builds(Message, st.sampled_from(["m", "probe"]), st.sampled_from([0, 1, (2, 3)])),
)

_leaves = st.one_of(
    st.just(TRUE),
    st.just(FALSE),
    st.builds(Crashed, _processes),
    st.builds(Inited, _processes, _actions),
    st.builds(Did, _processes, _actions),
    st.builds(Sent, _processes, _processes, _messages),
    st.builds(Received, _processes, _processes, _messages),
)


def _compound(children):
    return st.one_of(
        st.builds(Not, children),
        st.builds(Box, children),
        st.builds(Diamond, children),
        st.builds(Knows, _processes, children),
        st.builds(Implies, children, children),
        st.lists(children, min_size=1, max_size=3).map(lambda ps: And(*ps)),
        st.lists(children, min_size=1, max_size=3).map(lambda ps: Or(*ps)),
    )


_formulas = st.recursive(_leaves, _compound, max_leaves=8)

# One small shared system: enough points for semantic differences to
# show, small enough for the property to stay fast.
_SYSTEM = synthetic_system(3, 5, seed=13, duration=5)
_POINTS = [
    Point(run, m) for run in _SYSTEM.runs for m in range(run.duration + 1)
]


@settings(max_examples=60, deadline=None)
@given(formula=_formulas)
def test_round_trip_preserves_kernel_verdicts(formula) -> None:
    wire = formula_to_jsonable(formula)
    # The wire form is pure JSON (no tuples/sets/objects survive).
    decoded_wire = json.loads(json.dumps(wire))
    restored = formula_from_jsonable(decoded_wire)
    # JSON-level idempotence: re-encoding the restored tree is stable.
    assert formula_to_jsonable(restored) == wire
    assert formula_wire_key(formula_to_jsonable(restored)) == formula_wire_key(wire)
    checker = ModelChecker(_SYSTEM)
    for point in _POINTS:
        assert checker.holds(formula, point) == checker.holds(restored, point)


@settings(max_examples=30, deadline=None)
@given(formula=_formulas)
def test_wire_key_is_json_order_insensitive(formula) -> None:
    wire = formula_to_jsonable(formula)
    scrambled = json.loads(json.dumps(wire, sort_keys=True))
    assert formula_wire_key(wire) == formula_wire_key(scrambled)


def test_atom_has_no_wire_form() -> None:
    with pytest.raises(TypeError, match="no wire"):
        formula_to_jsonable(Atom("opaque", lambda point: True))


@pytest.mark.parametrize(
    "junk",
    [
        None,
        42,
        "crashed",
        [],
        {},
        {"op": "frobnicate"},
        {"op": "crashed"},  # missing process
        {"op": "crashed", "process": 7},  # non-string process
        {"op": "and", "parts": "p1"},  # parts not a list
        {"op": "knows", "process": "p1"},  # missing child
        {"op": "sent", "sender": "p1", "receiver": "p2", "message": {"kind": 3}},
        {"op": "not", "child": {"op": "nope"}},  # malformed nesting
    ],
)
def test_malformed_wire_payloads_refuse_to_decode(junk) -> None:
    with pytest.raises(ValueError):
        formula_from_jsonable(junk)


def test_message_payloads_survive_tagged_value_codec() -> None:
    """Tuples stay tuples through the wire (the tagged value codec)."""
    formula = Sent("p1", "p2", Message("vote", (1, ("a", 2))))
    restored = formula_from_jsonable(
        json.loads(json.dumps(formula_to_jsonable(formula)))
    )
    assert isinstance(restored, Sent)
    assert restored.message == formula.message
    assert restored.message.payload == (1, ("a", 2))
